//! The elaborated design and its builder.

use crate::analysis::rtl_output_width;
use crate::ids::{BehavioralId, RtlNodeId, SignalId};
use crate::node::{BehavioralNode, RtlNode, RtlOp, Sensitivity};
use crate::stmt::Stmt;
use crate::vdg::Vdg;
use std::collections::HashMap;
use std::fmt;

/// Whether a signal is a net or a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// A net (`wire`): driven by an RTL node or a primary input.
    Wire,
    /// A variable (`reg`): written by behavioral nodes; holds state.
    Reg,
}

/// Port direction of a top-level signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Primary input.
    Input,
    /// Primary output (an observation point for fault detection).
    Output,
}

/// One signal (net or variable) of the elaborated design.
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    /// Hierarchical name (e.g. `u_core.pc`).
    pub name: String,
    /// Width in bits (>= 1).
    pub width: u32,
    /// Net or variable.
    pub kind: SignalKind,
    /// Port direction if this is a top-level port.
    pub port: Option<PortDir>,
    /// True for compiler-generated intermediate nets (excluded from fault
    /// injection, like unnamed nets in commercial tools).
    pub synthetic: bool,
}

/// What drives a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// A primary input port.
    Input,
    /// The output of an RTL node.
    Rtl(RtlNodeId),
    /// Written by a behavioral node.
    Behavioral(BehavioralId),
}

/// An item in the levelized combinational evaluation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombItem {
    /// An RTL node.
    Rtl(RtlNodeId),
    /// A level-sensitive (combinational) behavioral node.
    Beh(BehavioralId),
}

/// Errors detected while finalizing a design.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// Two drivers contend for one signal.
    MultipleDrivers {
        /// The contended signal's name.
        signal: String,
    },
    /// A primary input is driven inside the design.
    DrivenInput {
        /// The input's name.
        signal: String,
    },
    /// An RTL node output width disagrees with its operator's result width.
    WidthMismatch {
        /// The node's output signal name.
        signal: String,
        /// Width implied by the operator and inputs.
        expected: u32,
        /// Declared width of the output signal.
        actual: u32,
    },
    /// The combinational network contains a cycle.
    CombinationalCycle {
        /// Name of a signal on the cycle.
        signal: String,
    },
    /// An RTL node has the wrong number of inputs for its operator.
    BadArity {
        /// The node's output signal name.
        signal: String,
    },
    /// A duplicate signal name was registered.
    DuplicateName {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MultipleDrivers { signal } => {
                write!(f, "signal `{signal}` has multiple drivers")
            }
            BuildError::DrivenInput { signal } => {
                write!(f, "primary input `{signal}` is driven inside the design")
            }
            BuildError::WidthMismatch {
                signal,
                expected,
                actual,
            } => write!(
                f,
                "node driving `{signal}` produces {expected} bits but the signal is {actual} bits"
            ),
            BuildError::CombinationalCycle { signal } => {
                write!(f, "combinational cycle through signal `{signal}`")
            }
            BuildError::BadArity { signal } => {
                write!(f, "node driving `{signal}` has the wrong number of inputs")
            }
            BuildError::DuplicateName { name } => {
                write!(f, "duplicate signal name `{name}`")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A fully elaborated, validated RTL design — the RTL graph of the paper.
///
/// Construct via [`DesignBuilder`] (directly or through the
/// `eraser-frontend` compiler). The design is immutable after construction;
/// all engines (good simulation, ERASER, baselines) share one instance.
#[derive(Debug, Clone)]
pub struct Design {
    name: String,
    signals: Vec<Signal>,
    rtl_nodes: Vec<RtlNode>,
    behavioral: Vec<BehavioralNode>,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
    drivers: Vec<Option<Driver>>,
    rtl_fanout: Vec<Vec<RtlNodeId>>,
    level_fanout: Vec<Vec<BehavioralId>>,
    edge_fanout: Vec<Vec<BehavioralId>>,
    comb_order: Vec<CombItem>,
    name_index: HashMap<String, SignalId>,
}

impl Design {
    /// The design (top module) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All signals, indexed by [`SignalId`].
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// One signal.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn signal(&self, id: SignalId) -> &Signal {
        &self.signals[id.index()]
    }

    /// All RTL nodes, indexed by [`RtlNodeId`].
    pub fn rtl_nodes(&self) -> &[RtlNode] {
        &self.rtl_nodes
    }

    /// One RTL node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn rtl_node(&self, id: RtlNodeId) -> &RtlNode {
        &self.rtl_nodes[id.index()]
    }

    /// All behavioral nodes, indexed by [`BehavioralId`].
    pub fn behavioral_nodes(&self) -> &[BehavioralNode] {
        &self.behavioral
    }

    /// One behavioral node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn behavioral(&self, id: BehavioralId) -> &BehavioralNode {
        &self.behavioral[id.index()]
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Primary outputs in declaration order — the observation points.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// What drives `sig`, if anything.
    pub fn driver(&self, sig: SignalId) -> Option<Driver> {
        self.drivers[sig.index()]
    }

    /// RTL nodes that read `sig`.
    pub fn rtl_fanout(&self, sig: SignalId) -> &[RtlNodeId] {
        &self.rtl_fanout[sig.index()]
    }

    /// Level-sensitive behavioral nodes activated by a change of `sig`.
    pub fn level_fanout(&self, sig: SignalId) -> &[BehavioralId] {
        &self.level_fanout[sig.index()]
    }

    /// Edge-triggered behavioral nodes watching `sig`.
    pub fn edge_fanout(&self, sig: SignalId) -> &[BehavioralId] {
        &self.edge_fanout[sig.index()]
    }

    /// Levelized combinational evaluation order (RTL nodes and
    /// level-sensitive behavioral nodes), for compiled-style full
    /// evaluation.
    pub fn comb_order(&self) -> &[CombItem] {
        &self.comb_order
    }

    /// Looks up a signal by (hierarchical) name.
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.name_index.get(name).copied()
    }

    /// Number of signals.
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }
}

/// Incremental builder for [`Design`].
///
/// # Example
///
/// Build `assign d = a & b;` followed by a flop `always @(posedge c) q <= d;`:
///
/// ```
/// use eraser_ir::*;
///
/// let mut b = DesignBuilder::new("dut");
/// let a = b.add_port("a", 8, PortDir::Input);
/// let bb = b.add_port("b", 8, PortDir::Input);
/// let c = b.add_port("c", 1, PortDir::Input);
/// let d = b.add_signal("d", 8, SignalKind::Wire);
/// let q = b.add_port_reg("q", 8, PortDir::Output);
/// b.add_rtl_node(RtlOp::Binary(BinaryOp::And), vec![a, bb], d);
/// b.add_behavioral(
///     "ff",
///     Sensitivity::Edges(vec![(EdgeKind::Pos, c)]),
///     Stmt::assign(q, Expr::sig(d), false),
/// );
/// let design = b.finish()?;
/// assert_eq!(design.rtl_nodes().len(), 1);
/// assert_eq!(design.behavioral_nodes().len(), 1);
/// # Ok::<(), eraser_ir::BuildError>(())
/// ```
#[derive(Debug, Default)]
pub struct DesignBuilder {
    name: String,
    signals: Vec<Signal>,
    rtl_nodes: Vec<RtlNode>,
    behavioral: Vec<(String, Sensitivity, Stmt)>,
    name_index: HashMap<String, SignalId>,
    duplicate: Option<String>,
}

impl DesignBuilder {
    /// Creates a builder for a design named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        DesignBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Registers a signal and returns its id.
    pub fn add_signal(
        &mut self,
        name: impl Into<String>,
        width: u32,
        kind: SignalKind,
    ) -> SignalId {
        self.add_signal_full(name, width, kind, None, false)
    }

    /// Registers a synthetic (compiler-generated) intermediate wire.
    pub fn add_temp(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        self.add_signal_full(name, width, SignalKind::Wire, None, true)
    }

    /// Registers a top-level wire port.
    pub fn add_port(&mut self, name: impl Into<String>, width: u32, dir: PortDir) -> SignalId {
        self.add_signal_full(name, width, SignalKind::Wire, Some(dir), false)
    }

    /// Registers a top-level `reg` output port (outputs driven by behavioral
    /// code).
    pub fn add_port_reg(&mut self, name: impl Into<String>, width: u32, dir: PortDir) -> SignalId {
        self.add_signal_full(name, width, SignalKind::Reg, Some(dir), false)
    }

    /// Registers a signal with full control over its attributes.
    pub fn add_signal_full(
        &mut self,
        name: impl Into<String>,
        width: u32,
        kind: SignalKind,
        port: Option<PortDir>,
        synthetic: bool,
    ) -> SignalId {
        let name = name.into();
        let id = SignalId::from_index(self.signals.len());
        if self.name_index.insert(name.clone(), id).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name.clone());
        }
        self.signals.push(Signal {
            name,
            width,
            kind,
            port,
            synthetic,
        });
        id
    }

    /// Adds a primitive RTL node driving `output`.
    pub fn add_rtl_node(
        &mut self,
        op: RtlOp,
        inputs: Vec<SignalId>,
        output: SignalId,
    ) -> RtlNodeId {
        let id = RtlNodeId::from_index(self.rtl_nodes.len());
        self.rtl_nodes.push(RtlNode { op, inputs, output });
        id
    }

    /// Adds a behavioral node (an `always` block).
    pub fn add_behavioral(
        &mut self,
        name: impl Into<String>,
        sensitivity: Sensitivity,
        body: Stmt,
    ) -> BehavioralId {
        let id = BehavioralId::from_index(self.behavioral.len());
        self.behavioral.push((name.into(), sensitivity, body));
        id
    }

    /// Width of an already-registered signal (builder-time helper for
    /// elaboration).
    pub fn signal_width(&self, id: SignalId) -> u32 {
        self.signals[id.index()].width
    }

    /// Kind of an already-registered signal (builder-time helper for
    /// elaboration).
    pub fn signal_kind(&self, id: SignalId) -> SignalKind {
        self.signals[id.index()].kind
    }

    /// Looks up an already-registered signal by name (builder-time helper
    /// for importers that must avoid duplicate registrations).
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.name_index.get(name).copied()
    }

    /// Validates and finalizes the design: computes drivers, fanout maps,
    /// behavioral read/write sets, VDGs, and the levelized combinational
    /// order.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for multiple drivers, driven inputs, RTL
    /// node width/arity mismatches, duplicate names, or combinational
    /// cycles.
    pub fn finish(self) -> Result<Design, BuildError> {
        let DesignBuilder {
            name,
            signals,
            rtl_nodes,
            behavioral: raw_beh,
            name_index,
            duplicate,
        } = self;

        if let Some(name) = duplicate {
            return Err(BuildError::DuplicateName { name });
        }

        let n_sig = signals.len();
        let mut drivers: Vec<Option<Driver>> = vec![None; n_sig];

        // Inputs are driven by the environment.
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for (i, sig) in signals.iter().enumerate() {
            match sig.port {
                Some(PortDir::Input) => {
                    drivers[i] = Some(Driver::Input);
                    inputs.push(SignalId::from_index(i));
                }
                Some(PortDir::Output) => outputs.push(SignalId::from_index(i)),
                None => {}
            }
        }

        // RTL node drivers + width/arity checks.
        for (ni, node) in rtl_nodes.iter().enumerate() {
            let nid = RtlNodeId::from_index(ni);
            let out = node.output.index();
            let sig_name = || signals[out].name.clone();
            if signals[out].port == Some(PortDir::Input) {
                return Err(BuildError::DrivenInput { signal: sig_name() });
            }
            if drivers[out].is_some() {
                return Err(BuildError::MultipleDrivers { signal: sig_name() });
            }
            drivers[out] = Some(Driver::Rtl(nid));
            let widths: Vec<u32> = node
                .inputs
                .iter()
                .map(|s| signals[s.index()].width)
                .collect();
            match rtl_output_width(&node.op, &widths) {
                Some(w) => {
                    // Buf tolerates width mismatch (port-connection resize).
                    if w != signals[out].width && !matches!(node.op, RtlOp::Buf) {
                        return Err(BuildError::WidthMismatch {
                            signal: sig_name(),
                            expected: w,
                            actual: signals[out].width,
                        });
                    }
                }
                None => return Err(BuildError::BadArity { signal: sig_name() }),
            }
        }

        // Behavioral nodes: analyses + drivers.
        let mut behavioral = Vec::with_capacity(raw_beh.len());
        for (bi, (bname, sensitivity, mut body)) in raw_beh.into_iter().enumerate() {
            let bid = BehavioralId::from_index(bi);
            let mut reads = Vec::new();
            body.collect_reads(&mut reads);
            reads.sort_unstable();
            reads.dedup();
            let mut writes = Vec::new();
            body.collect_writes(&mut writes);
            writes.sort_unstable();
            writes.dedup();
            for &w in &writes {
                let sig_name = || signals[w.index()].name.clone();
                if signals[w.index()].port == Some(PortDir::Input) {
                    return Err(BuildError::DrivenInput { signal: sig_name() });
                }
                match drivers[w.index()] {
                    None => drivers[w.index()] = Some(Driver::Behavioral(bid)),
                    Some(Driver::Behavioral(other)) if other == bid => {}
                    Some(_) => return Err(BuildError::MultipleDrivers { signal: sig_name() }),
                }
            }
            let vdg = Vdg::build(&mut body);
            behavioral.push(BehavioralNode {
                name: bname,
                sensitivity,
                body,
                reads,
                writes,
                vdg,
            });
        }

        // Fanout maps.
        let mut rtl_fanout: Vec<Vec<RtlNodeId>> = vec![Vec::new(); n_sig];
        for (ni, node) in rtl_nodes.iter().enumerate() {
            let nid = RtlNodeId::from_index(ni);
            let mut seen = Vec::new();
            for &inp in &node.inputs {
                if !seen.contains(&inp) {
                    seen.push(inp);
                    rtl_fanout[inp.index()].push(nid);
                }
            }
        }
        let mut level_fanout: Vec<Vec<BehavioralId>> = vec![Vec::new(); n_sig];
        let mut edge_fanout: Vec<Vec<BehavioralId>> = vec![Vec::new(); n_sig];
        for (bi, node) in behavioral.iter().enumerate() {
            let bid = BehavioralId::from_index(bi);
            match &node.sensitivity {
                Sensitivity::Edges(edges) => {
                    let mut seen = Vec::new();
                    for &(_, s) in edges {
                        if !seen.contains(&s) {
                            seen.push(s);
                            edge_fanout[s.index()].push(bid);
                        }
                    }
                }
                Sensitivity::Level(sigs) => {
                    for &s in sigs {
                        if !level_fanout[s.index()].contains(&bid) {
                            level_fanout[s.index()].push(bid);
                        }
                    }
                }
                Sensitivity::Star => {
                    for &s in &node.reads {
                        level_fanout[s.index()].push(bid);
                    }
                }
            }
        }

        let comb_order = levelize(&signals, &rtl_nodes, &behavioral, &drivers)?;

        Ok(Design {
            name,
            signals,
            rtl_nodes,
            behavioral,
            inputs,
            outputs,
            drivers,
            rtl_fanout,
            level_fanout,
            edge_fanout,
            comb_order,
            name_index,
        })
    }
}

/// Topologically orders the combinational items (RTL nodes plus
/// level-sensitive behavioral nodes). Sequential behavioral nodes cut the
/// graph. Errors on combinational cycles.
fn levelize(
    signals: &[Signal],
    rtl_nodes: &[RtlNode],
    behavioral: &[BehavioralNode],
    _drivers: &[Option<Driver>],
) -> Result<Vec<CombItem>, BuildError> {
    // Item index space: RTL nodes first, then comb behavioral nodes.
    let comb_beh: Vec<usize> = behavioral
        .iter()
        .enumerate()
        .filter(|(_, b)| !b.sensitivity.is_edge())
        .map(|(i, _)| i)
        .collect();
    let n_items = rtl_nodes.len() + comb_beh.len();

    // Map: signal -> producing item (if combinational).
    let mut producer: Vec<Option<usize>> = vec![None; signals.len()];
    for (ni, node) in rtl_nodes.iter().enumerate() {
        producer[node.output.index()] = Some(ni);
    }
    for (k, &bi) in comb_beh.iter().enumerate() {
        for &w in &behavioral[bi].writes {
            producer[w.index()] = Some(rtl_nodes.len() + k);
        }
    }

    // Dependency edges: item -> items producing its inputs.
    let item_inputs = |item: usize| -> Vec<SignalId> {
        if item < rtl_nodes.len() {
            rtl_nodes[item].inputs.clone()
        } else {
            let bi = comb_beh[item - rtl_nodes.len()];
            // A comb behavioral node's inputs are its activation reads; the
            // write targets it also reads (e.g. a blocking temp) do not form
            // real cycles, so exclude self-produced signals.
            behavioral[bi]
                .reads
                .iter()
                .copied()
                .filter(|s| !behavioral[bi].writes.contains(s))
                .collect()
        }
    };

    // Kahn's algorithm.
    let mut indegree = vec![0usize; n_items];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_items];
    for (item, deg) in indegree.iter_mut().enumerate() {
        for sig in item_inputs(item) {
            if let Some(p) = producer[sig.index()] {
                if p != item {
                    dependents[p].push(item);
                    *deg += 1;
                }
            }
        }
    }
    let mut queue: Vec<usize> = (0..n_items).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n_items);
    while let Some(item) = queue.pop() {
        order.push(item);
        for &d in &dependents[item] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push(d);
            }
        }
    }
    if order.len() != n_items {
        // Find a signal on the cycle for the error message.
        let stuck = (0..n_items).find(|&i| indegree[i] > 0).expect("cycle item");
        let sig = if stuck < rtl_nodes.len() {
            rtl_nodes[stuck].output
        } else {
            behavioral[comb_beh[stuck - rtl_nodes.len()]].writes[0]
        };
        return Err(BuildError::CombinationalCycle {
            signal: signals[sig.index()].name.clone(),
        });
    }
    Ok(order
        .into_iter()
        .map(|i| {
            if i < rtl_nodes.len() {
                CombItem::Rtl(RtlNodeId::from_index(i))
            } else {
                CombItem::Beh(BehavioralId::from_index(comb_beh[i - rtl_nodes.len()]))
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinaryOp, Expr};
    use crate::node::EdgeKind;

    fn tiny() -> DesignBuilder {
        let mut b = DesignBuilder::new("t");
        let a = b.add_port("a", 4, PortDir::Input);
        let c = b.add_port("c", 4, PortDir::Input);
        let d = b.add_signal("d", 4, SignalKind::Wire);
        b.add_rtl_node(RtlOp::Binary(BinaryOp::And), vec![a, c], d);
        b
    }

    #[test]
    fn build_tiny() {
        let d = tiny().finish().unwrap();
        assert_eq!(d.num_signals(), 3);
        assert_eq!(d.inputs().len(), 2);
        assert_eq!(d.comb_order().len(), 1);
        let a = d.find_signal("a").unwrap();
        assert_eq!(d.rtl_fanout(a).len(), 1);
        assert_eq!(d.driver(a), Some(Driver::Input));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut b = tiny();
        let a = b.name_index["a"];
        let c = b.name_index["c"];
        let d = b.name_index["d"];
        b.add_rtl_node(RtlOp::Binary(BinaryOp::Or), vec![a, c], d);
        assert!(matches!(
            b.finish(),
            Err(BuildError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn driven_input_rejected() {
        let mut b = tiny();
        let a = b.name_index["a"];
        let c = b.name_index["c"];
        b.add_rtl_node(RtlOp::Buf, vec![c], a);
        assert!(matches!(b.finish(), Err(BuildError::DrivenInput { .. })));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_port("a", 4, PortDir::Input);
        let c = b.add_port("c", 4, PortDir::Input);
        let d = b.add_signal("d", 8, SignalKind::Wire);
        b.add_rtl_node(RtlOp::Binary(BinaryOp::And), vec![a, c], d);
        assert!(matches!(b.finish(), Err(BuildError::WidthMismatch { .. })));
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut b = DesignBuilder::new("t");
        b.add_port("a", 4, PortDir::Input);
        b.add_port("a", 4, PortDir::Input);
        assert!(matches!(b.finish(), Err(BuildError::DuplicateName { .. })));
    }

    #[test]
    fn comb_cycle_rejected() {
        let mut b = DesignBuilder::new("t");
        let x = b.add_signal("x", 1, SignalKind::Wire);
        let y = b.add_signal("y", 1, SignalKind::Wire);
        b.add_rtl_node(RtlOp::Unary(crate::expr::UnaryOp::Not), vec![x], y);
        b.add_rtl_node(RtlOp::Unary(crate::expr::UnaryOp::Not), vec![y], x);
        assert!(matches!(
            b.finish(),
            Err(BuildError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn sequential_node_cuts_cycles() {
        // q feeds back through a flop: not a combinational cycle.
        let mut b = DesignBuilder::new("t");
        let clk = b.add_port("clk", 1, PortDir::Input);
        let q = b.add_signal("q", 1, SignalKind::Reg);
        let nq = b.add_signal("nq", 1, SignalKind::Wire);
        b.add_rtl_node(RtlOp::Unary(crate::expr::UnaryOp::Not), vec![q], nq);
        b.add_behavioral(
            "ff",
            Sensitivity::Edges(vec![(EdgeKind::Pos, clk)]),
            Stmt::assign(q, Expr::sig(nq), false),
        );
        let d = b.finish().unwrap();
        assert_eq!(d.comb_order().len(), 1);
        assert_eq!(d.edge_fanout(clk).len(), 1);
    }

    #[test]
    fn levelized_order_respects_deps() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_port("a", 1, PortDir::Input);
        let x = b.add_signal("x", 1, SignalKind::Wire);
        let y = b.add_signal("y", 1, SignalKind::Wire);
        // y depends on x; x depends on a. Insert y's node first.
        let ny = b.add_rtl_node(RtlOp::Unary(crate::expr::UnaryOp::Not), vec![x], y);
        let nx = b.add_rtl_node(RtlOp::Unary(crate::expr::UnaryOp::Not), vec![a], x);
        let d = b.finish().unwrap();
        let order = d.comb_order();
        let pos = |id: RtlNodeId| order.iter().position(|i| *i == CombItem::Rtl(id)).unwrap();
        assert!(pos(nx) < pos(ny));
    }

    #[test]
    fn star_sensitivity_infers_reads() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_port("a", 1, PortDir::Input);
        let c = b.add_port("c", 1, PortDir::Input);
        let q = b.add_signal("q", 1, SignalKind::Reg);
        b.add_behavioral(
            "comb",
            Sensitivity::Star,
            Stmt::assign(
                q,
                Expr::bin(BinaryOp::And, Expr::sig(a), Expr::sig(c)),
                true,
            ),
        );
        let d = b.finish().unwrap();
        assert_eq!(d.level_fanout(a), &[BehavioralId(0)]);
        assert_eq!(d.level_fanout(c), &[BehavioralId(0)]);
        let node = d.behavioral(BehavioralId(0));
        assert_eq!(node.reads, vec![a, c]);
        assert_eq!(node.writes, vec![q]);
        assert_eq!(node.vdg.segments.len(), 1);
    }
}
