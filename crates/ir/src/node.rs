//! RTL nodes and behavioral nodes — the two node classes of the RTL graph.

use crate::expr::{BinaryOp, UnaryOp};
use crate::ids::SignalId;
use crate::stmt::Stmt;
use crate::vdg::Vdg;

/// The operator computed by an [`RtlNode`].
///
/// Continuous-assign expression trees are flattened by the elaborator into
/// one primitive node per operator, with anonymous intermediate signals in
/// between — the granularity at which concurrent fault simulation tracks
/// fault-value differences through the combinational network.
#[derive(Debug, Clone, PartialEq)]
pub enum RtlOp {
    /// Identity buffer (`output = input`); used for port aliases.
    Buf,
    /// A unary operator; one input.
    Unary(UnaryOp),
    /// A binary operator; two inputs.
    Binary(BinaryOp),
    /// Multiplexer: inputs are `[cond, then_v, else_v]`; an unknown
    /// condition merges the data inputs bit-wise (agreeing bits survive).
    Mux,
    /// Concatenation; inputs are MSB-first as written in source.
    Concat,
    /// Replication of the single input `count` times.
    Replicate(u32),
    /// Constant part select `input[hi:lo]`.
    Slice {
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
    /// Variable bit select; inputs are `[base, index]`, 1-bit output.
    Index,
    /// Indexed part select; inputs are `[base, start]`.
    IndexedPart {
        /// Width of the selection.
        width: u32,
    },
    /// A constant driver (elaborated literal); no inputs.
    Const(eraser_logic::LogicVec),
}

/// A primitive combinational node of the RTL graph.
#[derive(Debug, Clone, PartialEq)]
pub struct RtlNode {
    /// The operator.
    pub op: RtlOp,
    /// Input signals, in operator-specific order.
    pub inputs: Vec<SignalId>,
    /// The single output signal this node drives.
    pub output: SignalId,
}

/// Clock/reset edge polarity in a sensitivity list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// `posedge` — a `0 -> 1`-ish transition (to `1` from any non-`1`).
    Pos,
    /// `negedge` — a `1 -> 0`-ish transition (to `0` from any non-`0`).
    Neg,
}

impl EdgeKind {
    /// True if a change `from -> to` constitutes this edge, using the IEEE
    /// 1364 event rules: a `posedge` is any transition *towards* `1`
    /// (`0->1`, `0->x`, `x->1`, ...), i.e. from a non-`1` to a non-`0` with
    /// a value change; symmetrically for `negedge`.
    pub fn matches(self, from: eraser_logic::LogicBit, to: eraser_logic::LogicBit) -> bool {
        use eraser_logic::LogicBit as B;
        if from == to {
            return false;
        }
        let from_cls = |b: B| matches!(b, B::One);
        let to_cls = |b: B| matches!(b, B::Zero);
        match self {
            // posedge: from != 1 and to != 0 (a movement towards 1).
            EdgeKind::Pos => !from_cls(from) && !to_cls(to),
            // negedge: from != 0 and to != 1 (a movement towards 0).
            EdgeKind::Neg => !matches!(from, B::Zero) && !matches!(to, B::One),
        }
    }
}

/// The sensitivity of a behavioral node.
#[derive(Debug, Clone, PartialEq)]
pub enum Sensitivity {
    /// `@(posedge a or negedge b ...)` — edge-triggered.
    Edges(Vec<(EdgeKind, SignalId)>),
    /// `@(a or b ...)` — level-sensitive on an explicit list.
    Level(Vec<SignalId>),
    /// `@(*)` — level-sensitive on the inferred read set.
    Star,
}

impl Sensitivity {
    /// True for edge-triggered (sequential) nodes.
    pub fn is_edge(&self) -> bool {
        matches!(self, Sensitivity::Edges(_))
    }
}

/// A behavioral node: one `always` block of the design.
///
/// Beyond the statement body, a finalized behavioral node carries the static
/// analyses the ERASER engine needs: the full read/write sets and the
/// [visibility dependency graph](crate::vdg::Vdg) whose decision/segment ids
/// are embedded in the body's statements.
#[derive(Debug, Clone, PartialEq)]
pub struct BehavioralNode {
    /// Diagnostic name (e.g. `top.u_core.always@47`).
    pub name: String,
    /// Sensitivity list.
    pub sensitivity: Sensitivity,
    /// The statement body.
    pub body: Stmt,
    /// Sorted, deduplicated set of all signals the body may read.
    pub reads: Vec<SignalId>,
    /// Sorted, deduplicated set of all signals the body may write.
    pub writes: Vec<SignalId>,
    /// The visibility dependency graph of the body.
    pub vdg: Vdg,
}

impl BehavioralNode {
    /// The signals whose value changes can *activate* this node: edge
    /// signals for sequential nodes, the explicit list or inferred read set
    /// for combinational ones.
    pub fn activation_signals(&self) -> Vec<SignalId> {
        match &self.sensitivity {
            Sensitivity::Edges(edges) => edges.iter().map(|(_, s)| *s).collect(),
            Sensitivity::Level(sigs) => sigs.clone(),
            Sensitivity::Star => self.reads.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eraser_logic::LogicBit as B;

    #[test]
    fn posedge_matches_ieee_rules() {
        assert!(EdgeKind::Pos.matches(B::Zero, B::One));
        assert!(EdgeKind::Pos.matches(B::Zero, B::X));
        assert!(EdgeKind::Pos.matches(B::X, B::One));
        assert!(!EdgeKind::Pos.matches(B::One, B::Zero));
        assert!(!EdgeKind::Pos.matches(B::One, B::One));
        assert!(!EdgeKind::Pos.matches(B::X, B::Zero));
        assert!(!EdgeKind::Pos.matches(B::One, B::X)); // movement away from 1
    }

    #[test]
    fn negedge_matches_ieee_rules() {
        assert!(EdgeKind::Neg.matches(B::One, B::Zero));
        assert!(EdgeKind::Neg.matches(B::One, B::X));
        assert!(EdgeKind::Neg.matches(B::X, B::Zero));
        assert!(!EdgeKind::Neg.matches(B::Zero, B::One));
        assert!(!EdgeKind::Neg.matches(B::Zero, B::X));
        assert!(!EdgeKind::Neg.matches(B::X, B::One));
    }

    #[test]
    fn no_change_is_no_edge() {
        for b in [B::Zero, B::One, B::X, B::Z] {
            assert!(!EdgeKind::Pos.matches(b, b));
            assert!(!EdgeKind::Neg.matches(b, b));
        }
    }
}
