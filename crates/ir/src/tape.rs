//! Compiled evaluation tapes — the second evaluation backend.
//!
//! The tree walker ([`eval_expr_into`](crate::eval::eval_expr_into)) pays a
//! dispatch cost per AST node on every evaluation: pointer-chasing through
//! `Box`ed children, a `match` per node, and scratch-buffer churn. This
//! module removes that steady-state overhead GSIM-style by **lowering** each
//! expression once into a flat [`EvalTape`] — a topologically-ordered (the
//! post-order of the tree) sequence of register-indexed instructions over a
//! slot arena, with constants pre-materialized in a pool and leaf operands
//! (signals, constants) referenced *by borrow* rather than loaded — and a
//! tight interpreter loop ([`run_tape`]) that replays it.
//!
//! Two instruction tiers exist for most operators:
//!
//! * **single-word fast paths** (`Bin64`, `Un64`, `Mux64`, `Concat64`,
//!   `Repl64`) — chosen at lowering time whenever every operand and the
//!   result fit in 64 bits. They read both four-state planes as plain
//!   `u64`s ([`LogicVec::word_planes`]) and write the result with one
//!   masked store ([`LogicVec::assign_word`]), bypassing the general
//!   `LogicVec` operator machinery entirely, and
//! * **general instructions** that delegate to the same in-place `LogicVec`
//!   operators the tree walker uses, so wide values keep identical
//!   semantics by construction.
//!
//! Slots are allocated by a free-list **keyed on word count**, so a slot is
//! only ever reused at the same storage shape: after the first execution of
//! a tape every slot holds correctly-sized storage and steady-state
//! replays perform **zero heap allocations** (the same ≤ 64-bit caveat as
//! the tree walker applies to wider designs).
//!
//! [`TapeProgram::compile`] lowers a whole design — every RTL node and
//! every behavioral body's right-hand sides, lvalue indices and branch
//! decisions — once; the program is immutable and shared by reference
//! across fault-parallel shard workers. [`EvalBackend`] is the user-facing
//! knob (`ERASER_EVAL=tree|tape`); the tree walker remains the
//! differential-testing oracle, and both backends are bit-identical on
//! every expression (see the `tape_parity` property suite).

use crate::design::Design;
use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::ids::SignalId;
use crate::node::{BehavioralNode, RtlNode, RtlOp};
use crate::stmt::{CaseKind, LValue, Stmt};
use crate::vdg::DecisionEval;
use crate::ValueSource;
use eraser_logic::{LogicBit, LogicVec};

/// Which expression-evaluation backend an engine runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalBackend {
    /// Walk `Expr` trees node by node (the reference oracle).
    #[default]
    Tree,
    /// Execute pre-compiled instruction tapes ([`EvalTape`]).
    Tape,
}

impl EvalBackend {
    /// Reads the backend from the `ERASER_EVAL` environment variable
    /// (`tree` or `tape`, case-insensitive; unset or empty means `tree`).
    ///
    /// # Panics
    ///
    /// Panics on any other value — a configuration typo must never
    /// silently select a different backend.
    pub fn from_env() -> Self {
        match std::env::var("ERASER_EVAL") {
            Err(_) => EvalBackend::Tree,
            Ok(v) if v.is_empty() => EvalBackend::Tree,
            Ok(v) => v
                .parse()
                .unwrap_or_else(|e| panic!("invalid ERASER_EVAL: {e}")),
        }
    }
}

impl std::fmt::Display for EvalBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalBackend::Tree => write!(f, "tree"),
            EvalBackend::Tape => write!(f, "tape"),
        }
    }
}

impl std::str::FromStr for EvalBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tree" => Ok(EvalBackend::Tree),
            "tape" => Ok(EvalBackend::Tape),
            other => Err(format!("unknown eval backend `{other}` (tree|tape)")),
        }
    }
}

/// An instruction operand: a tape slot, a design signal (read through the
/// [`ValueSource`] by borrow), or a pre-materialized constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// A temporary produced by an earlier instruction.
    Slot(u16),
    /// A signal, read live from the value source.
    Sig(SignalId),
    /// An entry of the tape's constant pool.
    Const(u16),
}

/// One instruction of an [`EvalTape`]. Destinations are always slots and
/// never alias any operand of the same instruction (three-address form).
#[derive(Debug, Clone, PartialEq)]
pub enum TapeInstr {
    /// General unary operator (mirrors the tree walker's `Unary` case).
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        src: Src,
        /// Destination slot.
        dst: u16,
    },
    /// Single-word unary operator; `width` is the operand width (≤ 64).
    Un64 {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        src: Src,
        /// Destination slot.
        dst: u16,
        /// Operand width in bits.
        width: u32,
    },
    /// General binary operator.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Src,
        /// Right operand.
        rhs: Src,
        /// Destination slot.
        dst: u16,
    },
    /// Single-word binary operator; `width` is the result width (≤ 64).
    Bin64 {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Src,
        /// Right operand.
        rhs: Src,
        /// Destination slot.
        dst: u16,
        /// Result width in bits.
        width: u32,
    },
    /// Ternary select with the tree walker's unknown-condition merge.
    Mux {
        /// Condition (reduced to a truth value).
        cond: Src,
        /// Value when true.
        then_: Src,
        /// Value when false.
        else_: Src,
        /// Destination slot.
        dst: u16,
    },
    /// Single-word ternary; `width` is the result width (≤ 64).
    Mux64 {
        /// Condition (its own width may be anything ≤ 64).
        cond: Src,
        /// Value when true.
        then_: Src,
        /// Value when false.
        else_: Src,
        /// Destination slot.
        dst: u16,
        /// Result width in bits.
        width: u32,
    },
    /// General concatenation; parts are LSB-first.
    Concat {
        /// Parts, LSB-first.
        parts: Box<[Src]>,
        /// Destination slot.
        dst: u16,
    },
    /// Single-word concatenation; each part carries its precomputed LSB
    /// offset.
    Concat64 {
        /// `(part, low-bit offset)`, any order (offsets are disjoint).
        parts: Box<[(Src, u32)]>,
        /// Destination slot.
        dst: u16,
        /// Total width in bits (≤ 64).
        width: u32,
    },
    /// General replication.
    Replicate {
        /// Replicated value.
        src: Src,
        /// Copy count (> 0).
        n: u32,
        /// Destination slot.
        dst: u16,
    },
    /// Single-word replication.
    Repl64 {
        /// Replicated value.
        src: Src,
        /// Copy count (> 0).
        n: u32,
        /// Width of one copy.
        stride: u32,
        /// Destination slot.
        dst: u16,
        /// Total width in bits (≤ 64).
        width: u32,
    },
    /// Constant part select of a signal.
    Slice {
        /// Signal being selected from.
        sig: SignalId,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
        /// Destination slot.
        dst: u16,
    },
    /// Variable bit select of a signal (1-bit result; unknown or
    /// out-of-range indices read `X`).
    Index {
        /// Signal being selected from.
        sig: SignalId,
        /// Bit index operand.
        idx: Src,
        /// Destination slot.
        dst: u16,
    },
    /// Indexed part select of a signal.
    IndexedPart {
        /// Signal being selected from.
        sig: SignalId,
        /// Start (low bit) operand.
        start: Src,
        /// Width of the selection.
        width: u32,
        /// Destination slot.
        dst: u16,
    },
}

impl TapeInstr {
    /// The destination slot this instruction writes.
    pub fn dst(&self) -> u16 {
        match self {
            TapeInstr::Unary { dst, .. }
            | TapeInstr::Un64 { dst, .. }
            | TapeInstr::Binary { dst, .. }
            | TapeInstr::Bin64 { dst, .. }
            | TapeInstr::Mux { dst, .. }
            | TapeInstr::Mux64 { dst, .. }
            | TapeInstr::Concat { dst, .. }
            | TapeInstr::Concat64 { dst, .. }
            | TapeInstr::Replicate { dst, .. }
            | TapeInstr::Repl64 { dst, .. }
            | TapeInstr::Slice { dst, .. }
            | TapeInstr::Index { dst, .. }
            | TapeInstr::IndexedPart { dst, .. } => *dst,
        }
    }

    /// Applies `f` to every slot reference (operands and destination).
    fn remap_slots(&mut self, f: &dyn Fn(u16) -> u16) {
        let fix = |s: &mut Src| {
            if let Src::Slot(i) = s {
                *i = f(*i);
            }
        };
        match self {
            TapeInstr::Unary { src, dst, .. }
            | TapeInstr::Un64 { src, dst, .. }
            | TapeInstr::Replicate { src, dst, .. }
            | TapeInstr::Repl64 { src, dst, .. } => {
                fix(src);
                *dst = f(*dst);
            }
            TapeInstr::Binary { lhs, rhs, dst, .. } | TapeInstr::Bin64 { lhs, rhs, dst, .. } => {
                fix(lhs);
                fix(rhs);
                *dst = f(*dst);
            }
            TapeInstr::Mux {
                cond,
                then_,
                else_,
                dst,
            }
            | TapeInstr::Mux64 {
                cond,
                then_,
                else_,
                dst,
                ..
            } => {
                fix(cond);
                fix(then_);
                fix(else_);
                *dst = f(*dst);
            }
            TapeInstr::Concat { parts, dst } => {
                for p in parts.iter_mut() {
                    fix(p);
                }
                *dst = f(*dst);
            }
            TapeInstr::Concat64 { parts, dst, .. } => {
                for (p, _) in parts.iter_mut() {
                    fix(p);
                }
                *dst = f(*dst);
            }
            TapeInstr::Slice { dst, .. } => *dst = f(*dst),
            TapeInstr::Index { idx, dst, .. } => {
                fix(idx);
                *dst = f(*dst);
            }
            TapeInstr::IndexedPart { start, dst, .. } => {
                fix(start);
                *dst = f(*dst);
            }
        }
    }
}

/// A compiled expression: a flat instruction sequence over a slot arena.
///
/// Produced once by [`compile_expr`] (or [`TapeProgram::compile`] for a
/// whole design) and replayed any number of times by [`run_tape`]. Tapes
/// are immutable and `Sync`, so one compilation is shared across
/// fault-parallel workers.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalTape {
    instrs: Box<[TapeInstr]>,
    consts: Box<[LogicVec]>,
    root: Src,
    n_slots: u16,
    /// Word-count class of each slot (1 for everything ≤ 64 bits) — the
    /// shape a slot's storage settles into. [`TapeProgram::compile`] uses
    /// these to renumber slots so one shared [`TapeScratch`] never reuses
    /// a slot index at two different word counts across tapes.
    slot_classes: Box<[u16]>,
    /// Forced result width (RTL node outputs); `None` leaves the natural
    /// expression width.
    out_width: Option<u32>,
}

impl EvalTape {
    /// Number of instructions (0 for a leaf expression).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True for a leaf expression (plain signal or constant reference).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of temporary slots the tape needs.
    pub fn slot_count(&self) -> usize {
        self.n_slots as usize
    }

    /// Returns a copy with the result forced (zero-extended / truncated)
    /// to `width` — what RTL node outputs need.
    pub fn with_out_width(mut self, width: u32) -> Self {
        self.out_width = Some(width);
        self
    }
}

/// Reusable execution state for tapes: the slot arena plus a small buffer
/// pool for decision evaluation. Hold one per engine (or worker thread);
/// slots keep their storage across runs, so steady-state execution never
/// allocates (≤ 64-bit values; wider slots reuse storage at a stable word
/// count because the lowering's slot allocator never mixes word counts in
/// one slot).
#[derive(Debug, Clone, Default)]
pub struct TapeScratch {
    slots: Vec<LogicVec>,
    pool: Vec<LogicVec>,
}

impl TapeScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a buffer out of the pool (contents unspecified).
    #[inline]
    pub fn take(&mut self) -> LogicVec {
        self.pool.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool.
    #[inline]
    pub fn put(&mut self, v: LogicVec) {
        self.pool.push(v);
    }
}

/// Word-count class of a width (1 for everything ≤ 64).
#[inline]
fn words_of(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

/// Mask of the low `width` bits (`width <= 64`).
#[inline]
fn mask64(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Truth value of a ≤ 64-bit value given its plane words: `1` if any
/// defined `1` bit, `X` if any unknown bit, `0` otherwise (the single-word
/// form of [`LogicVec::truth`]).
#[inline]
fn truth64(a: u64, b: u64) -> LogicBit {
    if a & !b != 0 {
        LogicBit::One
    } else if b != 0 {
        LogicBit::X
    } else {
        LogicBit::Zero
    }
}

/// Plane words of a 1-bit value holding `bit`.
#[inline]
fn bit_planes(bit: LogicBit) -> (u64, u64) {
    let (a, b) = bit.planes();
    (a as u64, b as u64)
}

/// Single-word binary operator on plane words; `w` is the result width.
/// Bit-identical to [`crate::eval::eval_binary_assign`] for operands that
/// fit in one word.
fn bin64(op: BinaryOp, la: u64, lb: u64, ra: u64, rb: u64, w: u32) -> (u64, u64) {
    let m = mask64(w);
    match op {
        BinaryOp::And => {
            let def0 = (!la & !lb) | (!ra & !rb);
            let x = (lb | rb) & !def0;
            let one = (la & !lb) & (ra & !rb);
            ((one | x) & m, x & m)
        }
        BinaryOp::Or => {
            let one = (la & !lb) | (ra & !rb);
            let x = (lb | rb) & !one;
            ((one | x) & m, x & m)
        }
        BinaryOp::Xor => {
            let x = lb | rb;
            ((((la ^ ra) & !x) | x) & m, x & m)
        }
        BinaryOp::Xnor => {
            let x = lb | rb;
            (((!(la ^ ra) & !x) | x) & m, x & m)
        }
        BinaryOp::Add => {
            if lb | rb != 0 {
                (m, m)
            } else {
                (la.wrapping_add(ra) & m, 0)
            }
        }
        BinaryOp::Sub => {
            if lb | rb != 0 {
                (m, m)
            } else {
                (la.wrapping_sub(ra) & m, 0)
            }
        }
        BinaryOp::Mul => {
            if lb | rb != 0 {
                (m, m)
            } else {
                (la.wrapping_mul(ra) & m, 0)
            }
        }
        BinaryOp::Div => {
            if lb | rb != 0 || ra == 0 {
                (m, m)
            } else {
                ((la / ra) & m, 0)
            }
        }
        BinaryOp::Rem => {
            if lb | rb != 0 || ra == 0 {
                (m, m)
            } else {
                ((la % ra) & m, 0)
            }
        }
        // Shifts: `w` is the left operand's width. An unknown amount is
        // all-X; a defined amount saturates (zero fill), matching
        // `shl_vec_assign` / `lshr_vec_assign`.
        BinaryOp::Shl => {
            if rb != 0 {
                (m, m)
            } else if ra >= w as u64 {
                (0, 0)
            } else {
                ((la << ra) & m, (lb << ra) & m)
            }
        }
        BinaryOp::Shr => {
            if rb != 0 {
                (m, m)
            } else if ra >= w as u64 {
                (0, 0)
            } else {
                ((la >> ra) & m, (lb >> ra) & m)
            }
        }
        BinaryOp::AShr => ashr64(la, lb, ra, rb, w),
        BinaryOp::Eq => {
            if lb | rb != 0 {
                (1, 1)
            } else {
                ((la == ra) as u64, 0)
            }
        }
        BinaryOp::Ne => {
            if lb | rb != 0 {
                (1, 1)
            } else {
                ((la != ra) as u64, 0)
            }
        }
        BinaryOp::CaseEq => ((la == ra && lb == rb) as u64, 0),
        BinaryOp::CaseNe => ((la != ra || lb != rb) as u64, 0),
        BinaryOp::Lt => {
            if lb | rb != 0 {
                (1, 1)
            } else {
                ((la < ra) as u64, 0)
            }
        }
        BinaryOp::Le => {
            if lb | rb != 0 {
                (1, 1)
            } else {
                ((la <= ra) as u64, 0)
            }
        }
        BinaryOp::Gt => {
            if lb | rb != 0 {
                (1, 1)
            } else {
                ((la > ra) as u64, 0)
            }
        }
        BinaryOp::Ge => {
            if lb | rb != 0 {
                (1, 1)
            } else {
                ((la >= ra) as u64, 0)
            }
        }
        BinaryOp::LogicalAnd => bit_planes(truth64(la, lb).and(truth64(ra, rb))),
        BinaryOp::LogicalOr => bit_planes(truth64(la, lb).or(truth64(ra, rb))),
    }
}

/// Single-word arithmetic right shift: MSB fill (X fill for an unknown
/// MSB), all-X on an unknown amount, saturation on huge amounts —
/// bit-identical to [`LogicVec::ashr_vec_assign`].
fn ashr64(la: u64, lb: u64, ra: u64, rb: u64, w: u32) -> (u64, u64) {
    let m = mask64(w);
    if rb != 0 {
        return (m, m);
    }
    let msb_a = (la >> (w - 1)) & 1;
    let msb_b = (lb >> (w - 1)) & 1;
    let (fa, fb) = if msb_b == 1 { (1, 1) } else { (msb_a, 0) };
    let sh = ra.min(w as u64) as u32;
    if sh == 0 {
        return (la, lb);
    }
    // sh >= 1, so w - sh <= 63 and the shifts below are in range.
    let (keep_a, keep_b) = if sh >= w {
        (0, 0)
    } else {
        (la >> sh, lb >> sh)
    };
    let fill = m & !mask64(w - sh);
    (
        (keep_a | if fa == 1 { fill } else { 0 }) & m,
        (keep_b | if fb == 1 { fill } else { 0 }) & m,
    )
}

/// Single-word unary operator; `w` is the operand width. Returns the
/// result planes and the result width.
fn un64(op: UnaryOp, a: u64, b: u64, w: u32) -> (u64, u64, u32) {
    let m = mask64(w);
    match op {
        UnaryOp::Not => (((!a & !b) | b) & m, b & m, w),
        UnaryOp::Neg => {
            if b != 0 {
                (m, m, w)
            } else {
                (a.wrapping_neg() & m, 0, w)
            }
        }
        UnaryOp::LogicalNot => {
            let (pa, pb) = bit_planes(truth64(a, b).not());
            (pa, pb, 1)
        }
        UnaryOp::RedAnd => {
            if (!a & !b) & m != 0 {
                (0, 0, 1)
            } else if b != 0 {
                (1, 1, 1)
            } else {
                (1, 0, 1)
            }
        }
        UnaryOp::RedOr => {
            if a & !b != 0 {
                (1, 0, 1)
            } else if b != 0 {
                (1, 1, 1)
            } else {
                (0, 0, 1)
            }
        }
        UnaryOp::RedXor => {
            if b != 0 {
                (1, 1, 1)
            } else {
                ((a.count_ones() as u64) & 1, 0, 1)
            }
        }
    }
}

/// Single-word ternary select/merge; `w` is the result width.
/// Bit-identical to the tree walker's `Ternary` case.
fn mux64(ca: u64, cb: u64, ta: u64, tb: u64, ea: u64, eb: u64, w: u32) -> (u64, u64) {
    let m = mask64(w);
    match truth64(ca, cb) {
        LogicBit::One => (ta & m, tb & m),
        LogicBit::Zero => (ea & m, eb & m),
        _ => {
            // Per-bit merge: agreeing defined bits survive, all else is X
            // (the single-word form of `merge_x_assign`).
            let agree = !(ta ^ ea) & !(tb ^ eb);
            let keep = agree & !tb;
            (((ta & keep) | !keep) & m, !keep & m)
        }
    }
}

// ---- lowering ----

/// Expression lowering state: emitted instructions, the constant pool, and
/// a slot allocator whose free lists are keyed by word count (so a slot is
/// only ever reused at one storage shape).
struct Lowerer<'w> {
    instrs: Vec<TapeInstr>,
    consts: Vec<LogicVec>,
    n_slots: u16,
    /// Word-count class of each allocated slot.
    slot_classes: Vec<u16>,
    /// Free slots per word-count class (index 0 unused).
    free: Vec<Vec<u16>>,
    sig_width: &'w dyn Fn(SignalId) -> u32,
}

impl<'w> Lowerer<'w> {
    fn new(sig_width: &'w dyn Fn(SignalId) -> u32) -> Self {
        Lowerer {
            instrs: Vec::new(),
            consts: Vec::new(),
            n_slots: 0,
            slot_classes: Vec::new(),
            free: Vec::new(),
            sig_width,
        }
    }

    fn alloc(&mut self, width: u32) -> u16 {
        let class = words_of(width);
        if self.free.len() <= class {
            self.free.resize_with(class + 1, Vec::new);
        }
        if let Some(slot) = self.free[class].pop() {
            return slot;
        }
        let slot = self.n_slots;
        self.n_slots = self
            .n_slots
            .checked_add(1)
            .expect("expression needs more than 65535 evaluation slots");
        self.slot_classes.push(class as u16);
        slot
    }

    /// Releases an operand for reuse (slots only; signal and constant
    /// operands are borrows).
    fn release(&mut self, src: Src, width: u32) {
        if let Src::Slot(s) = src {
            self.free[words_of(width)].push(s);
        }
    }

    fn intern_const(&mut self, v: &LogicVec) -> Src {
        // Small pools; linear dedup keeps repeated literals (case labels,
        // zero constants) from bloating the tape.
        if let Some(i) = self.consts.iter().position(|c| c == v) {
            return Src::Const(i as u16);
        }
        let idx = u16::try_from(self.consts.len()).expect("constant pool overflow");
        self.consts.push(v.clone());
        Src::Const(idx)
    }

    /// Lowers `e`, returning its operand reference and result width.
    fn lower(&mut self, e: &Expr) -> (Src, u32) {
        match e {
            Expr::Const(v) => (self.intern_const(v), v.width()),
            Expr::Signal(s) => (Src::Sig(*s), (self.sig_width)(*s)),
            Expr::Unary(op, sub) => {
                let (src, w) = self.lower(sub);
                let ow = match op {
                    UnaryOp::Not | UnaryOp::Neg => w,
                    _ => 1,
                };
                let dst = self.alloc(ow);
                if w <= 64 {
                    self.instrs.push(TapeInstr::Un64 {
                        op: *op,
                        src,
                        dst,
                        width: w,
                    });
                } else {
                    self.instrs.push(TapeInstr::Unary { op: *op, src, dst });
                }
                self.release(src, w);
                (Src::Slot(dst), ow)
            }
            Expr::Binary(op, l, r) => {
                let (lhs, lw) = self.lower(l);
                let (rhs, rw) = self.lower(r);
                let ow = if op.is_single_bit() {
                    1
                } else {
                    match op {
                        BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => lw,
                        _ => lw.max(rw),
                    }
                };
                let dst = self.alloc(ow);
                if lw <= 64 && rw <= 64 {
                    self.instrs.push(TapeInstr::Bin64 {
                        op: *op,
                        lhs,
                        rhs,
                        dst,
                        width: ow,
                    });
                } else {
                    self.instrs.push(TapeInstr::Binary {
                        op: *op,
                        lhs,
                        rhs,
                        dst,
                    });
                }
                self.release(lhs, lw);
                self.release(rhs, rw);
                (Src::Slot(dst), ow)
            }
            Expr::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                let (c, cw) = self.lower(cond);
                let (t, tw) = self.lower(then_e);
                let (el, ew) = self.lower(else_e);
                let ow = tw.max(ew);
                let dst = self.alloc(ow);
                if cw <= 64 && tw <= 64 && ew <= 64 {
                    self.instrs.push(TapeInstr::Mux64 {
                        cond: c,
                        then_: t,
                        else_: el,
                        dst,
                        width: ow,
                    });
                } else {
                    self.instrs.push(TapeInstr::Mux {
                        cond: c,
                        then_: t,
                        else_: el,
                        dst,
                    });
                }
                self.release(c, cw);
                self.release(t, tw);
                self.release(el, ew);
                (Src::Slot(dst), ow)
            }
            Expr::Concat(parts) => {
                assert!(!parts.is_empty(), "concat needs at least one part");
                // Source order is MSB-first; assemble LSB-first.
                let lowered: Vec<(Src, u32)> = parts.iter().map(|p| self.lower(p)).collect();
                let total: u32 = lowered.iter().map(|(_, w)| w).sum();
                let dst = self.alloc(total);
                if total <= 64 {
                    let mut lo = 0;
                    let mut placed: Vec<(Src, u32)> = Vec::with_capacity(lowered.len());
                    for &(src, w) in lowered.iter().rev() {
                        placed.push((src, lo));
                        lo += w;
                    }
                    self.instrs.push(TapeInstr::Concat64 {
                        parts: placed.into_boxed_slice(),
                        dst,
                        width: total,
                    });
                } else {
                    let lsb_first: Vec<Src> = lowered.iter().rev().map(|&(src, _)| src).collect();
                    self.instrs.push(TapeInstr::Concat {
                        parts: lsb_first.into_boxed_slice(),
                        dst,
                    });
                }
                for (src, w) in lowered {
                    self.release(src, w);
                }
                (Src::Slot(dst), total)
            }
            Expr::Replicate(n, sub) => {
                assert!(*n > 0, "replication count must be positive");
                let (src, w) = self.lower(sub);
                let total = w * n;
                let dst = self.alloc(total);
                if total <= 64 {
                    self.instrs.push(TapeInstr::Repl64 {
                        src,
                        n: *n,
                        stride: w,
                        dst,
                        width: total,
                    });
                } else {
                    self.instrs.push(TapeInstr::Replicate { src, n: *n, dst });
                }
                self.release(src, w);
                (Src::Slot(dst), total)
            }
            Expr::Slice { base, hi, lo } => {
                let ow = hi - lo + 1;
                let dst = self.alloc(ow);
                self.instrs.push(TapeInstr::Slice {
                    sig: *base,
                    hi: *hi,
                    lo: *lo,
                    dst,
                });
                (Src::Slot(dst), ow)
            }
            Expr::Index { base, index } => {
                let (idx, iw) = self.lower(index);
                let dst = self.alloc(1);
                self.instrs.push(TapeInstr::Index {
                    sig: *base,
                    idx,
                    dst,
                });
                self.release(idx, iw);
                (Src::Slot(dst), 1)
            }
            Expr::IndexedPart { base, start, width } => {
                let (st, sw) = self.lower(start);
                let dst = self.alloc(*width);
                self.instrs.push(TapeInstr::IndexedPart {
                    sig: *base,
                    start: st,
                    width: *width,
                    dst,
                });
                self.release(st, sw);
                (Src::Slot(dst), *width)
            }
        }
    }

    fn finish(self, root: Src) -> EvalTape {
        // Post-order lowering guarantees the root of a non-leaf tape is
        // the destination of the final instruction — `run_tape` relies on
        // it to execute that instruction straight into the caller's
        // output buffer.
        debug_assert!(match (self.instrs.last(), root) {
            (None, _) => true,
            (Some(last), Src::Slot(d)) => last.dst() == d,
            (Some(_), _) => false,
        });
        EvalTape {
            instrs: self.instrs.into_boxed_slice(),
            consts: self.consts.into_boxed_slice(),
            root,
            n_slots: self.n_slots,
            slot_classes: self.slot_classes.into_boxed_slice(),
            out_width: None,
        }
    }
}

/// Lowers one expression into a tape. `sig_width` maps signals to their
/// declared widths (the same width model as
/// [`expr_width_with`](crate::analysis::expr_width_with)).
pub fn compile_expr(expr: &Expr, sig_width: &dyn Fn(SignalId) -> u32) -> EvalTape {
    let mut l = Lowerer::new(sig_width);
    let (root, _) = l.lower(expr);
    l.finish(root)
}

// ---- interpretation ----

/// Resolves an operand to a borrowed value.
#[inline]
fn res<'a, S: ValueSource + ?Sized>(
    op: Src,
    slots: &'a [LogicVec],
    consts: &'a [LogicVec],
    src: &'a S,
) -> &'a LogicVec {
    match op {
        Src::Slot(i) => &slots[i as usize],
        Src::Const(i) => &consts[i as usize],
        Src::Sig(s) => src.value(s),
    }
}

/// Executes `tape` against `src`, writing the result into `out` (reshaped
/// as needed) and running entirely out of `scratch`'s slot arena. The
/// final instruction executes straight into `out` — a leaf tape is a
/// single copy, and a one-instruction tape (every RTL node) never touches
/// a slot at all. Bit-identical to
/// [`eval_expr_into`](crate::eval::eval_expr_into) on the expression the
/// tape was compiled from.
pub fn run_tape<S: ValueSource + ?Sized>(
    tape: &EvalTape,
    src: &S,
    scratch: &mut TapeScratch,
    out: &mut LogicVec,
) {
    if scratch.slots.len() < tape.n_slots as usize {
        scratch
            .slots
            .resize_with(tape.n_slots as usize, LogicVec::default);
    }
    let consts = &tape.consts;
    match tape.instrs.split_last() {
        None => out.assign_from(res(tape.root, &scratch.slots, consts, src)),
        Some((last, init)) => {
            for ins in init {
                // Single-word instructions read their operand planes by
                // value, so the destination slot is written directly — no
                // take/put round trip through the arena.
                match word_fast(ins, &scratch.slots, consts, src) {
                    Some((w, a, b)) => scratch.slots[ins.dst() as usize].assign_word(w, a, b),
                    None => {
                        let dst = ins.dst() as usize;
                        let mut d = std::mem::take(&mut scratch.slots[dst]);
                        exec_instr(ins, &scratch.slots, consts, src, &mut d);
                        scratch.slots[dst] = d;
                    }
                }
            }
            // Post-order lowering guarantees `last` computes the root.
            exec_instr(last, &scratch.slots, consts, src, out);
        }
    }
    if let Some(w) = tape.out_width {
        if out.width() != w {
            out.resize_assign(w);
        }
    }
}

/// The single-word fast-path result of `ins` as `(width, aval, bval)`,
/// or `None` for general (multi-word) instructions. The one shared
/// implementation behind both the interior-instruction loop (which stores
/// into a slot) and the final-instruction path (which stores into the
/// caller's buffer), so the two can never drift apart.
#[inline]
fn word_fast<S: ValueSource + ?Sized>(
    ins: &TapeInstr,
    slots: &[LogicVec],
    consts: &[LogicVec],
    src: &S,
) -> Option<(u32, u64, u64)> {
    match ins {
        TapeInstr::Bin64 {
            op,
            lhs,
            rhs,
            width,
            ..
        } => {
            let (la, lb) = res(*lhs, slots, consts, src).word_planes();
            let (ra, rb) = res(*rhs, slots, consts, src).word_planes();
            let (a, b) = bin64(*op, la, lb, ra, rb, *width);
            Some((*width, a, b))
        }
        TapeInstr::Un64 {
            op, src: s, width, ..
        } => {
            let (a, b) = res(*s, slots, consts, src).word_planes();
            let (ra, rb, rw) = un64(*op, a, b, *width);
            Some((rw, ra, rb))
        }
        TapeInstr::Mux64 {
            cond,
            then_,
            else_,
            width,
            ..
        } => {
            let (ca, cb) = res(*cond, slots, consts, src).word_planes();
            let (ta, tb) = res(*then_, slots, consts, src).word_planes();
            let (ea, eb) = res(*else_, slots, consts, src).word_planes();
            let (a, b) = mux64(ca, cb, ta, tb, ea, eb, *width);
            Some((*width, a, b))
        }
        TapeInstr::Concat64 { parts, width, .. } => {
            let (mut a, mut b) = (0u64, 0u64);
            for &(p, lo) in parts.iter() {
                let (pa, pb) = res(p, slots, consts, src).word_planes();
                a |= pa << lo;
                b |= pb << lo;
            }
            Some((*width, a, b))
        }
        TapeInstr::Repl64 {
            src: s,
            n,
            stride,
            width,
            ..
        } => {
            let (pa, pb) = res(*s, slots, consts, src).word_planes();
            let (mut a, mut b) = (0u64, 0u64);
            for k in 0..*n {
                a |= pa << (k * stride);
                b |= pb << (k * stride);
            }
            Some((*width, a, b))
        }
        TapeInstr::Index { sig, idx, .. } => {
            let bit = match res(*idx, slots, consts, src).to_u64() {
                Some(i) if i <= u32::MAX as u64 => src.value(*sig).bit_or_x(i as u32),
                _ => LogicBit::X,
            };
            let (a, b) = bit_planes(bit);
            Some((1, a, b))
        }
        _ => None,
    }
}

/// Executes one instruction, reading operands from `slots` / `consts` /
/// `src` by borrow and writing the result into `d` (which never aliases an
/// operand: the caller took the destination slot out of the arena, or
/// passes its own output buffer).
fn exec_instr<S: ValueSource + ?Sized>(
    ins: &TapeInstr,
    slots: &[LogicVec],
    consts: &[LogicVec],
    src: &S,
    d: &mut LogicVec,
) {
    if let Some((w, a, b)) = word_fast(ins, slots, consts, src) {
        d.assign_word(w, a, b);
        return;
    }
    match ins {
        TapeInstr::Unary { op, src: s, .. } => {
            let v = res(*s, slots, consts, src);
            match op {
                UnaryOp::Not => {
                    d.assign_from(v);
                    d.not_assign();
                }
                UnaryOp::Neg => {
                    d.assign_from(v);
                    d.neg_assign();
                }
                UnaryOp::LogicalNot => d.assign_bit(v.truth().not()),
                UnaryOp::RedAnd => d.assign_bit(v.red_and()),
                UnaryOp::RedOr => d.assign_bit(v.red_or()),
                UnaryOp::RedXor => d.assign_bit(v.red_xor()),
            }
        }
        TapeInstr::Binary { op, lhs, rhs, .. } => {
            let l = res(*lhs, slots, consts, src);
            let r = res(*rhs, slots, consts, src);
            exec_binary(*op, l, r, d);
        }
        TapeInstr::Mux {
            cond, then_, else_, ..
        } => {
            let c = res(*cond, slots, consts, src);
            let t = res(*then_, slots, consts, src);
            let e = res(*else_, slots, consts, src);
            match c.truth() {
                LogicBit::One => {
                    let w = t.width().max(e.width());
                    d.assign_from(t);
                    d.resize_assign(w);
                }
                LogicBit::Zero => {
                    let w = t.width().max(e.width());
                    d.assign_from(e);
                    d.resize_assign(w);
                }
                _ => {
                    d.assign_from(t);
                    d.merge_x_assign(e);
                }
            }
        }
        TapeInstr::Concat { parts, .. } => {
            let total: u32 = parts
                .iter()
                .map(|&p| res(p, slots, consts, src).width())
                .sum();
            d.make_zeros(total);
            let mut lo = 0;
            for &p in parts.iter() {
                let v = res(p, slots, consts, src);
                d.assign_slice(lo, v);
                lo += v.width();
            }
        }
        TapeInstr::Replicate { src: s, n, .. } => {
            let v = res(*s, slots, consts, src);
            d.make_zeros(v.width() * n);
            for k in 0..*n {
                d.assign_slice(k * v.width(), v);
            }
        }
        TapeInstr::Slice { sig, hi, lo, .. } => src.value(*sig).slice_into(*hi, *lo, d),
        TapeInstr::IndexedPart {
            sig, start, width, ..
        } => {
            let sv = res(*start, slots, consts, src);
            match sv.to_u64() {
                Some(st) if st + *width as u64 <= u32::MAX as u64 => {
                    src.value(*sig)
                        .slice_into(st as u32 + width - 1, st as u32, d)
                }
                _ => d.make_x(*width),
            }
        }
        // Handled by the word_fast path above.
        TapeInstr::Bin64 { .. }
        | TapeInstr::Un64 { .. }
        | TapeInstr::Mux64 { .. }
        | TapeInstr::Concat64 { .. }
        | TapeInstr::Repl64 { .. }
        | TapeInstr::Index { .. } => unreachable!("single-word instruction fell through word_fast"),
    }
}

/// General binary execution in three-address form, mirroring
/// [`eval_binary_assign`](crate::eval::eval_binary_assign) without needing
/// a scratch temporary (the destination never aliases an operand).
fn exec_binary(op: BinaryOp, l: &LogicVec, r: &LogicVec, d: &mut LogicVec) {
    match op {
        BinaryOp::And => {
            d.assign_from(l);
            d.and_assign(r);
        }
        BinaryOp::Or => {
            d.assign_from(l);
            d.or_assign(r);
        }
        BinaryOp::Xor => {
            d.assign_from(l);
            d.xor_assign(r);
        }
        BinaryOp::Xnor => {
            d.assign_from(l);
            d.xnor_assign(r);
        }
        BinaryOp::Add => {
            d.assign_from(l);
            d.add_assign(r);
        }
        BinaryOp::Sub => {
            d.assign_from(l);
            d.sub_assign(r);
        }
        BinaryOp::Mul => l.mul_into(r, d),
        BinaryOp::Div => l.div_into(r, d),
        BinaryOp::Rem => l.rem_into(r, d),
        BinaryOp::Shl => {
            d.assign_from(l);
            d.shl_vec_assign(r);
        }
        BinaryOp::Shr => {
            d.assign_from(l);
            d.lshr_vec_assign(r);
        }
        BinaryOp::AShr => {
            d.assign_from(l);
            d.ashr_vec_assign(r);
        }
        BinaryOp::Eq => d.assign_bit(l.logic_eq(r)),
        BinaryOp::Ne => d.assign_bit(l.logic_ne(r)),
        BinaryOp::CaseEq => d.assign_bit(LogicBit::from(l.case_eq(r))),
        BinaryOp::CaseNe => d.assign_bit(LogicBit::from(!l.case_eq(r))),
        BinaryOp::Lt => d.assign_bit(l.lt(r)),
        BinaryOp::Le => d.assign_bit(l.le(r)),
        BinaryOp::Gt => d.assign_bit(l.gt(r)),
        BinaryOp::Ge => d.assign_bit(l.ge(r)),
        BinaryOp::LogicalAnd => d.assign_bit(l.truth().and(r.truth())),
        BinaryOp::LogicalOr => d.assign_bit(l.truth().or(r.truth())),
    }
}

// ---- design-level programs ----

/// The compiled tapes of one assignment: the right-hand side plus the
/// lvalue's dynamic index expression (bit select / indexed part select),
/// when present.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentTapes {
    /// Right-hand-side tape (natural expression width; the interpreter
    /// sizes the value to the written range, as the tree path does).
    pub rhs: EvalTape,
    /// Dynamic lvalue index tape (`sig[index] = ...` / `sig[start +: w]`).
    pub lv_index: Option<EvalTape>,
}

/// The compiled `Evaluate` function of one path decision — the tape twin
/// of [`DecisionEval`], producing identical outcomes.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionTape {
    /// `if`/`for`: outcome 1 when the condition's truth value is `1`.
    Truth(EvalTape),
    /// `case`/`casez`: outcome is the first matching arm's index, or
    /// `arm_labels.len()` when none matches.
    Case {
        /// Scrutinee tape.
        scrutinee: EvalTape,
        /// Label tapes of each arm, in order.
        arm_labels: Vec<Vec<EvalTape>>,
        /// Matching semantics.
        kind: CaseKind,
    },
}

impl DecisionTape {
    /// Computes the branch outcome under `src` — bit-identical to
    /// [`DecisionEval::evaluate_with`] on the decision this was compiled
    /// from.
    pub fn evaluate_with<S: ValueSource + ?Sized>(
        &self,
        src: &S,
        scratch: &mut TapeScratch,
    ) -> u32 {
        match self {
            DecisionTape::Truth(cond) => {
                let mut v = scratch.take();
                run_tape(cond, src, scratch, &mut v);
                let outcome = (v.truth() == LogicBit::One) as u32;
                scratch.put(v);
                outcome
            }
            DecisionTape::Case {
                scrutinee,
                arm_labels,
                kind,
            } => {
                let mut scrut = scratch.take();
                run_tape(scrutinee, src, scratch, &mut scrut);
                let mut lv = scratch.take();
                let mut outcome = arm_labels.len() as u32;
                'arms: for (i, labels) in arm_labels.iter().enumerate() {
                    for label in labels {
                        run_tape(label, src, scratch, &mut lv);
                        let hit = match kind {
                            CaseKind::Exact => scrut.case_eq(&lv),
                            CaseKind::Z => scrut.casez_match(&lv),
                        };
                        if hit {
                            outcome = i as u32;
                            break 'arms;
                        }
                    }
                }
                scratch.put(lv);
                scratch.put(scrut);
                outcome
            }
        }
    }
}

/// The compiled tapes of one behavioral node, indexed by the ids embedded
/// in its statement tree.
#[derive(Debug, Clone, PartialEq)]
pub struct BehavioralTapes {
    /// Per-[`SegmentId`](crate::ids::SegmentId) assignment tapes.
    pub segments: Vec<SegmentTapes>,
    /// Per-[`DecisionId`](crate::ids::DecisionId) decision tapes.
    pub decisions: Vec<DecisionTape>,
}

/// Every tape of a design: one per RTL node (result forced to the output
/// signal's width) and one [`BehavioralTapes`] per behavioral node.
/// Compiled once per design and shared (by reference) across engines and
/// fault-parallel shard workers.
#[derive(Debug, Clone, PartialEq)]
pub struct TapeProgram {
    rtl: Vec<EvalTape>,
    behavioral: Vec<BehavioralTapes>,
}

impl TapeProgram {
    /// The program for `backend`: `None` for the tree walker, a full
    /// compilation for the tape backend — the one place the
    /// backend-to-compilation dispatch lives.
    pub fn for_backend(design: &Design, backend: EvalBackend) -> Option<TapeProgram> {
        match backend {
            EvalBackend::Tree => None,
            EvalBackend::Tape => Some(TapeProgram::compile(design)),
        }
    }

    /// Lowers every RTL node and behavioral body of `design`, then
    /// renumbers slots so the whole program shares one arena layout.
    pub fn compile(design: &Design) -> TapeProgram {
        let sig_width = |s: SignalId| design.signal(s).width;
        let mut program = TapeProgram {
            rtl: design
                .rtl_nodes()
                .iter()
                .map(|n| compile_rtl_node(n, &sig_width))
                .collect(),
            behavioral: design
                .behavioral_nodes()
                .iter()
                .map(|b| compile_behavioral(b, &sig_width))
                .collect(),
        };
        program.harmonize_slots();
        program
    }

    /// Renumbers every tape's slots into word-count-class-segregated
    /// regions of one shared arena layout: slot index `i` means the same
    /// storage shape in *every* tape of the program, so a [`TapeScratch`]
    /// driven through many tapes (the settle loop visits every RTL node
    /// and behavioral body) never reshapes a slot's storage back and
    /// forth between word counts — the wide-design analogue of the
    /// inline-value zero-allocation guarantee.
    fn harmonize_slots(&mut self) {
        // Widest per-class demand across all tapes.
        let mut max_per_class: Vec<u16> = Vec::new();
        let mut count: Vec<u16> = Vec::new();
        self.for_each_tape(&mut |t: &mut EvalTape| {
            count.clear();
            for &c in t.slot_classes.iter() {
                let c = c as usize;
                if count.len() <= c {
                    count.resize(c + 1, 0);
                }
                count[c] += 1;
            }
            if max_per_class.len() < count.len() {
                max_per_class.resize(count.len(), 0);
            }
            for (c, &n) in count.iter().enumerate() {
                max_per_class[c] = max_per_class[c].max(n);
            }
        });
        // Contiguous region per class.
        let mut offsets = vec![0u16; max_per_class.len()];
        let mut total: u16 = 0;
        for (c, &n) in max_per_class.iter().enumerate() {
            offsets[c] = total;
            total = total.checked_add(n).expect("shared slot arena overflow");
        }
        let mut global_classes = vec![0u16; total as usize];
        for (c, &n) in max_per_class.iter().enumerate() {
            for k in 0..n {
                global_classes[(offsets[c] + k) as usize] = c as u16;
            }
        }
        let global_classes = global_classes.into_boxed_slice();
        let mut next_in_class = vec![0u16; max_per_class.len()];
        self.for_each_tape(&mut |t: &mut EvalTape| {
            next_in_class.fill(0);
            let map: Vec<u16> = t
                .slot_classes
                .iter()
                .map(|&c| {
                    let c = c as usize;
                    let idx = offsets[c] + next_in_class[c];
                    next_in_class[c] += 1;
                    idx
                })
                .collect();
            let f = move |i: u16| map[i as usize];
            for ins in t.instrs.iter_mut() {
                ins.remap_slots(&f);
            }
            if let Src::Slot(i) = &mut t.root {
                *i = f(*i);
            }
            t.n_slots = total;
            t.slot_classes = global_classes.clone();
        });
    }

    /// Visits every tape of the program, including decision scrutinees,
    /// arm labels and dynamic lvalue indices.
    fn for_each_tape(&mut self, f: &mut dyn FnMut(&mut EvalTape)) {
        for t in &mut self.rtl {
            f(t);
        }
        for b in &mut self.behavioral {
            for st in &mut b.segments {
                f(&mut st.rhs);
                if let Some(t) = &mut st.lv_index {
                    f(t);
                }
            }
            for d in &mut b.decisions {
                match d {
                    DecisionTape::Truth(t) => f(t),
                    DecisionTape::Case {
                        scrutinee,
                        arm_labels,
                        ..
                    } => {
                        f(scrutinee);
                        for ls in arm_labels {
                            for l in ls {
                                f(l);
                            }
                        }
                    }
                }
            }
        }
    }

    /// The tape of RTL node `index`.
    #[inline]
    pub fn rtl(&self, index: usize) -> &EvalTape {
        &self.rtl[index]
    }

    /// The tapes of behavioral node `index`.
    #[inline]
    pub fn behavioral(&self, index: usize) -> &BehavioralTapes {
        &self.behavioral[index]
    }
}

/// A tape program an engine holds: compiled privately or shared from a
/// campaign-level compilation (what fault-parallel shard workers receive).
#[derive(Debug, Clone)]
pub enum TapeRef<'a> {
    /// Privately compiled and owned.
    Owned(Box<TapeProgram>),
    /// Borrowed from a campaign-wide compilation.
    Shared(&'a TapeProgram),
}

impl TapeRef<'_> {
    /// The program.
    #[inline]
    pub fn program(&self) -> &TapeProgram {
        match self {
            TapeRef::Owned(p) => p,
            TapeRef::Shared(p) => p,
        }
    }
}

/// The tapes for `backend`: `None` for the tree walker, a freshly compiled
/// owned program for the tape backend.
pub fn tapes_for_backend(design: &Design, backend: EvalBackend) -> Option<TapeRef<'static>> {
    TapeProgram::for_backend(design, backend).map(|p| TapeRef::Owned(Box::new(p)))
}

/// The source-equivalent expression of an RTL node — lowering reuses the
/// expression path so node and expression semantics can never diverge.
fn rtl_to_expr(node: &RtlNode) -> Expr {
    let sig = |k: usize| Expr::Signal(node.inputs[k]);
    match &node.op {
        RtlOp::Buf => sig(0),
        RtlOp::Const(c) => Expr::Const(c.clone()),
        RtlOp::Unary(u) => Expr::Unary(*u, Box::new(sig(0))),
        RtlOp::Binary(b) => Expr::Binary(*b, Box::new(sig(0)), Box::new(sig(1))),
        RtlOp::Mux => Expr::Ternary {
            cond: Box::new(sig(0)),
            then_e: Box::new(sig(1)),
            else_e: Box::new(sig(2)),
        },
        RtlOp::Concat => Expr::Concat(node.inputs.iter().map(|s| Expr::Signal(*s)).collect()),
        RtlOp::Replicate(n) => Expr::Replicate(*n, Box::new(sig(0))),
        RtlOp::Slice { hi, lo } => Expr::Slice {
            base: node.inputs[0],
            hi: *hi,
            lo: *lo,
        },
        RtlOp::Index => Expr::Index {
            base: node.inputs[0],
            index: Box::new(sig(1)),
        },
        RtlOp::IndexedPart { width } => Expr::IndexedPart {
            base: node.inputs[0],
            start: Box::new(sig(1)),
            width: *width,
        },
    }
}

/// Lowers one RTL node; the result is forced to the output signal's width
/// exactly as the kernels' `eval_rtl_op_with` does after evaluation.
fn compile_rtl_node(node: &RtlNode, sig_width: &dyn Fn(SignalId) -> u32) -> EvalTape {
    compile_expr(&rtl_to_expr(node), sig_width).with_out_width(sig_width(node.output))
}

/// Lowers one behavioral node: every assignment's RHS and dynamic lvalue
/// index (by segment id) and every decision's `Evaluate` function (by
/// decision id).
fn compile_behavioral(
    node: &BehavioralNode,
    sig_width: &dyn Fn(SignalId) -> u32,
) -> BehavioralTapes {
    let decisions = node
        .vdg
        .decisions
        .iter()
        .map(|d| match &d.eval {
            DecisionEval::Truth(e) => DecisionTape::Truth(compile_expr(e, sig_width)),
            DecisionEval::Case {
                scrutinee,
                arm_labels,
                kind,
            } => DecisionTape::Case {
                scrutinee: compile_expr(scrutinee, sig_width),
                arm_labels: arm_labels
                    .iter()
                    .map(|ls| ls.iter().map(|l| compile_expr(l, sig_width)).collect())
                    .collect(),
                kind: *kind,
            },
        })
        .collect();
    let mut segments: Vec<Option<SegmentTapes>> =
        (0..node.vdg.segments.len()).map(|_| None).collect();
    collect_segments(&node.body, &mut segments, sig_width);
    BehavioralTapes {
        segments: segments
            .into_iter()
            .map(|s| s.expect("every segment id appears exactly once in the body"))
            .collect(),
        decisions,
    }
}

fn collect_segments(
    stmt: &Stmt,
    out: &mut [Option<SegmentTapes>],
    sig_width: &dyn Fn(SignalId) -> u32,
) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                collect_segments(s, out, sig_width);
            }
        }
        Stmt::Assign {
            lhs, rhs, segment, ..
        } => {
            let lv_index = match lhs {
                LValue::BitSelect { index, .. } => Some(compile_expr(index, sig_width)),
                LValue::IndexedPart { start, .. } => Some(compile_expr(start, sig_width)),
                LValue::Full(_) | LValue::PartSelect { .. } => None,
            };
            out[segment.index()] = Some(SegmentTapes {
                rhs: compile_expr(rhs, sig_width),
                lv_index,
            });
        }
        Stmt::If { then_s, else_s, .. } => {
            collect_segments(then_s, out, sig_width);
            if let Some(e) = else_s {
                collect_segments(e, out, sig_width);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for arm in arms {
                collect_segments(&arm.body, out, sig_width);
            }
            if let Some(d) = default {
                collect_segments(d, out, sig_width);
            }
        }
        Stmt::For {
            init, step, body, ..
        } => {
            collect_segments(init, out, sig_width);
            collect_segments(body, out, sig_width);
            collect_segments(step, out, sig_width);
        }
        Stmt::Nop => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_expr_cloning;

    fn w8(_: SignalId) -> u32 {
        8
    }

    fn run(tape: &EvalTape, vals: &[LogicVec]) -> LogicVec {
        let mut scratch = TapeScratch::new();
        let mut out = LogicVec::default();
        run_tape(tape, vals, &mut scratch, &mut out);
        out
    }

    #[test]
    fn leaf_signal_has_no_instructions() {
        let tape = compile_expr(&Expr::sig(SignalId(0)), &w8);
        assert!(tape.is_empty());
        let vals = vec![LogicVec::from_u64(8, 0x5a)];
        assert_eq!(run(&tape, &vals).to_u64(), Some(0x5a));
    }

    #[test]
    fn binary_fast_path_matches_oracle() {
        let e = Expr::bin(
            BinaryOp::Add,
            Expr::sig(SignalId(0)),
            Expr::bin(BinaryOp::Xor, Expr::sig(SignalId(1)), Expr::val(8, 0x0f)),
        );
        let tape = compile_expr(&e, &w8);
        let vals = vec![LogicVec::from_u64(8, 200), LogicVec::from_u64(8, 0x33)];
        assert_eq!(run(&tape, &vals), eval_expr_cloning(&e, &vals));
    }

    #[test]
    fn slots_are_reused_within_a_word_class() {
        // A deep chain needs only a bounded number of slots thanks to the
        // free-list allocator.
        let mut e = Expr::sig(SignalId(0));
        for _ in 0..32 {
            e = Expr::bin(BinaryOp::Add, e, Expr::sig(SignalId(1)));
        }
        let tape = compile_expr(&e, &w8);
        assert!(tape.slot_count() <= 3, "slots: {}", tape.slot_count());
        let vals = vec![LogicVec::from_u64(8, 1), LogicVec::from_u64(8, 3)];
        assert_eq!(run(&tape, &vals), eval_expr_cloning(&e, &vals));
    }

    #[test]
    fn mux_merges_on_unknown_condition() {
        let e = Expr::Ternary {
            cond: Box::new(Expr::sig(SignalId(0))),
            then_e: Box::new(Expr::sig(SignalId(1))),
            else_e: Box::new(Expr::sig(SignalId(2))),
        };
        let tape = compile_expr(&e, &w8);
        for cond in [
            LogicVec::from_u64(8, 1),
            LogicVec::from_u64(8, 0),
            LogicVec::new_x(8),
        ] {
            let vals = vec![
                cond,
                LogicVec::from_u64(8, 0b1100_1010),
                LogicVec::from_u64(8, 0b1010_1010),
            ];
            assert_eq!(run(&tape, &vals), eval_expr_cloning(&e, &vals));
        }
    }

    #[test]
    fn out_width_forces_the_result() {
        let tape = compile_expr(&Expr::sig(SignalId(0)), &w8).with_out_width(4);
        let vals = vec![LogicVec::from_u64(8, 0xff)];
        let out = run(&tape, &vals);
        assert_eq!(out.width(), 4);
        assert_eq!(out.to_u64(), Some(0xf));
    }

    #[test]
    fn constants_are_interned() {
        let e = Expr::bin(
            BinaryOp::Or,
            Expr::bin(BinaryOp::And, Expr::sig(SignalId(0)), Expr::val(8, 7)),
            Expr::bin(BinaryOp::And, Expr::sig(SignalId(1)), Expr::val(8, 7)),
        );
        let tape = compile_expr(&e, &w8);
        assert_eq!(tape.consts.len(), 1);
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("tape".parse::<EvalBackend>().unwrap(), EvalBackend::Tape);
        assert_eq!("TREE".parse::<EvalBackend>().unwrap(), EvalBackend::Tree);
        assert!("fast".parse::<EvalBackend>().is_err());
        assert_eq!(EvalBackend::Tape.to_string(), "tape");
    }
}
