//! Visibility dependency graphs (VDG).
//!
//! The VDG is the data structure at the heart of the ERASER paper's
//! implicit-redundancy detection (Section IV-A, Fig. 5). It extends the
//! control flow graph of a behavioral body with two node classes:
//!
//! * **path decision nodes** — branch statements (`if`, `case`, the
//!   condition of a `for`). Each carries an `Evaluate` input set: the
//!   signals read by the condition (and case labels). At run time the good
//!   execution records the outcome of every decision it passes; the
//!   redundancy check re-evaluates each decision under a fault's values and
//!   compares outcomes (Algorithm 1, lines 5–11).
//! * **path dependency nodes (segments)** — branch-free execution segments.
//!   Each carries the set of signals whose values flow into the segment's
//!   assignments (right-hand sides, index expressions, and the previous
//!   value of partially-written targets). The redundancy check asks whether
//!   any of these signals is *visible* for the fault (lines 12–18).
//!
//! Here every assignment is its own dependency segment — a finer granularity
//! than the paper's basic-block segments but semantically identical (the
//! union of read sets along the executed path is the same), and it lets the
//! interpreter record the path as a flat sequence of ids embedded in the
//! statement tree.

use crate::eval::{eval_expr_into, EvalScratch};
use crate::expr::Expr;
use crate::ids::{DecisionId, SegmentId, SignalId};
use crate::stmt::{CaseKind, LValue, Stmt};
use crate::ValueSource;
use eraser_logic::LogicBit;

/// What kind of branch a decision node guards (for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// An `if` condition; outcomes are 1 (then) / 0 (else).
    If,
    /// A `case`/`casez` scrutinee; outcomes index the matching arm, with
    /// `arms.len()` meaning "default / no match".
    Case,
    /// A `for` condition; outcomes are 1 (iterate) / 0 (exit).
    For,
}

/// The `Evaluate` function of a path decision node (paper, Fig. 5): given a
/// value source, computes which sub-path the behavioral code takes.
///
/// The interpreter evaluates decisions through this payload, and the
/// implicit-redundancy check re-evaluates them under each fault's values —
/// one implementation, so the two can never disagree.
#[derive(Debug, Clone, PartialEq)]
pub enum DecisionEval {
    /// `if`/`for`: the truth value of the condition. Outcome 1 = true,
    /// 0 = false or unknown (IEEE 1364: an unknown condition takes `else`).
    Truth(Expr),
    /// `case`/`casez`: the index of the first matching arm, or
    /// `arm_labels.len()` when none matches (the default path).
    Case {
        /// Scrutinee expression.
        scrutinee: Expr,
        /// Labels of each arm, in order.
        arm_labels: Vec<Vec<Expr>>,
        /// Matching semantics.
        kind: CaseKind,
    },
}

impl DecisionEval {
    /// Computes the branch outcome under `src`, drawing temporaries from
    /// `scratch` — the allocation-free hot path.
    pub fn evaluate_with<S: ValueSource + ?Sized>(
        &self,
        src: &S,
        scratch: &mut EvalScratch,
    ) -> u32 {
        match self {
            DecisionEval::Truth(cond) => {
                let mut v = scratch.take();
                eval_expr_into(cond, src, scratch, &mut v);
                let outcome = (v.truth() == LogicBit::One) as u32;
                scratch.put(v);
                outcome
            }
            DecisionEval::Case {
                scrutinee,
                arm_labels,
                kind,
            } => {
                let mut scrut = scratch.take();
                eval_expr_into(scrutinee, src, scratch, &mut scrut);
                let mut lv = scratch.take();
                let mut outcome = arm_labels.len() as u32;
                'arms: for (i, labels) in arm_labels.iter().enumerate() {
                    for label in labels {
                        eval_expr_into(label, src, scratch, &mut lv);
                        let hit = match kind {
                            CaseKind::Exact => scrut.case_eq(&lv),
                            CaseKind::Z => scrut.casez_match(&lv),
                        };
                        if hit {
                            outcome = i as u32;
                            break 'arms;
                        }
                    }
                }
                scratch.put(lv);
                scratch.put(scrut);
                outcome
            }
        }
    }

    /// Computes the branch outcome under `src` with a throwaway scratch
    /// arena. Use [`DecisionEval::evaluate_with`] on hot paths.
    pub fn evaluate<S: ValueSource + ?Sized>(&self, src: &S) -> u32 {
        self.evaluate_with(src, &mut EvalScratch::new())
    }
}

/// A path decision node of the VDG.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionInfo {
    /// Branch kind.
    pub kind: DecisionKind,
    /// Sorted, deduplicated signals read by the `Evaluate` function (the
    /// condition, plus the scrutinee and all labels for a `case`).
    pub reads: Vec<SignalId>,
    /// The `Evaluate` function.
    pub eval: DecisionEval,
}

/// A path dependency node of the VDG (one assignment).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentInfo {
    /// Sorted, deduplicated signals whose values determine the assignment's
    /// effect: right-hand side reads, lvalue index reads, and the target
    /// itself for partial writes.
    pub reads: Vec<SignalId>,
    /// The signal written.
    pub target: SignalId,
    /// True if the write covers only part of the target.
    pub partial: bool,
    /// True for a blocking (`=`) assignment.
    pub blocking: bool,
}

/// A node reference in VDG traversal order (source order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VdgNode {
    /// A path decision node.
    Decision(DecisionId),
    /// A path dependency node.
    Segment(SegmentId),
}

/// The visibility dependency graph of one behavioral body.
///
/// Decision and segment ids are embedded in the body's [`Stmt`] tree by
/// [`Vdg::build`], so the interpreter can record the executed path without
/// any lookup structure.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vdg {
    /// Path decision nodes, indexed by [`DecisionId`].
    pub decisions: Vec<DecisionInfo>,
    /// Path dependency nodes, indexed by [`SegmentId`].
    pub segments: Vec<SegmentInfo>,
}

impl Vdg {
    /// Builds the VDG for `body`, assigning fresh [`DecisionId`]s and
    /// [`SegmentId`]s into the statement tree in a deterministic preorder.
    pub fn build(body: &mut Stmt) -> Vdg {
        let mut vdg = Vdg::default();
        vdg.visit(body);
        vdg
    }

    /// Total node count (decisions + segments).
    pub fn node_count(&self) -> usize {
        self.decisions.len() + self.segments.len()
    }

    fn visit(&mut self, stmt: &mut Stmt) {
        match stmt {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.visit(s);
                }
            }
            Stmt::Assign {
                lhs,
                rhs,
                blocking,
                segment,
            } => {
                let mut reads = Vec::new();
                rhs.collect_reads(&mut reads);
                lhs.collect_reads(&mut reads);
                reads.sort_unstable();
                reads.dedup();
                *segment = SegmentId::from_index(self.segments.len());
                self.segments.push(SegmentInfo {
                    reads,
                    target: lhs.target(),
                    partial: lhs.is_partial(),
                    blocking: *blocking,
                });
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
                decision,
            } => {
                *decision = self.push_decision(
                    DecisionKind::If,
                    cond.reads(),
                    DecisionEval::Truth(cond.clone()),
                );
                self.visit(then_s);
                if let Some(e) = else_s {
                    self.visit(e);
                }
            }
            Stmt::Case {
                scrutinee,
                arms,
                default,
                decision,
                kind,
            } => {
                let mut reads = Vec::new();
                scrutinee.collect_reads(&mut reads);
                for arm in arms.iter() {
                    for l in &arm.labels {
                        l.collect_reads(&mut reads);
                    }
                }
                reads.sort_unstable();
                reads.dedup();
                let eval = DecisionEval::Case {
                    scrutinee: scrutinee.clone(),
                    arm_labels: arms.iter().map(|a| a.labels.clone()).collect(),
                    kind: *kind,
                };
                *decision = self.push_decision(DecisionKind::Case, reads, eval);
                for arm in arms {
                    self.visit(&mut arm.body);
                }
                if let Some(d) = default {
                    self.visit(d);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                decision,
            } => {
                self.visit(init);
                *decision = self.push_decision(
                    DecisionKind::For,
                    cond.reads(),
                    DecisionEval::Truth(cond.clone()),
                );
                self.visit(body);
                self.visit(step);
            }
            Stmt::Nop => {}
        }
    }

    fn push_decision(
        &mut self,
        kind: DecisionKind,
        reads: Vec<SignalId>,
        eval: DecisionEval,
    ) -> DecisionId {
        let id = DecisionId::from_index(self.decisions.len());
        self.decisions.push(DecisionInfo { kind, reads, eval });
        id
    }
}

/// Checks whether an lvalue's *index* reads make the write's effect depend
/// on a fault — exposed for tests; the engine uses the precomputed
/// [`SegmentInfo::reads`].
pub fn lvalue_reads(lv: &LValue) -> Vec<SignalId> {
    let mut v = Vec::new();
    lv.collect_reads(&mut v);
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinaryOp, Expr};
    use crate::ids::SignalId;

    fn s(i: u32) -> SignalId {
        SignalId(i)
    }

    /// Mirrors the paper's Fig. 5(a): nested if/else-if with assignments.
    fn fig5_body() -> Stmt {
        // if (s == 0) { r <= c+g; a <= k; }
        // else if (s == 1) r <= 0;
        // else { a <= 0; if (b == 0) r <= r + 1; else r <= a * r; }
        let sid = s(0);
        let (c, g, k, b, r, a) = (s(1), s(2), s(3), s(4), s(5), s(6));
        Stmt::if_else(
            Expr::bin(BinaryOp::Eq, Expr::sig(sid), Expr::val(2, 0)),
            Stmt::Block(vec![
                Stmt::assign(
                    r,
                    Expr::bin(BinaryOp::Add, Expr::sig(c), Expr::sig(g)),
                    false,
                ),
                Stmt::assign(a, Expr::sig(k), false),
            ]),
            Stmt::if_else(
                Expr::bin(BinaryOp::Eq, Expr::sig(sid), Expr::val(2, 1)),
                Stmt::assign(r, Expr::val(8, 0), false),
                Stmt::Block(vec![
                    Stmt::assign(a, Expr::val(8, 0), false),
                    Stmt::if_else(
                        Expr::bin(BinaryOp::Eq, Expr::sig(b), Expr::val(1, 0)),
                        Stmt::assign(
                            r,
                            Expr::bin(BinaryOp::Add, Expr::sig(r), Expr::val(8, 1)),
                            false,
                        ),
                        Stmt::assign(
                            r,
                            Expr::bin(BinaryOp::Mul, Expr::sig(a), Expr::sig(r)),
                            false,
                        ),
                    ),
                ]),
            ),
        )
    }

    #[test]
    fn fig5_structure() {
        let mut body = fig5_body();
        let vdg = Vdg::build(&mut body);
        // Three decisions: s==0, s==1, b==0.
        assert_eq!(vdg.decisions.len(), 3);
        // Six assignments.
        assert_eq!(vdg.segments.len(), 6);
        assert_eq!(vdg.node_count(), 9);
        // Decision read sets.
        assert_eq!(vdg.decisions[0].reads, vec![s(0)]);
        assert_eq!(vdg.decisions[1].reads, vec![s(0)]);
        assert_eq!(vdg.decisions[2].reads, vec![s(4)]);
        // First segment: r <= c + g reads {c, g}.
        assert_eq!(vdg.segments[0].reads, vec![s(1), s(2)]);
        assert_eq!(vdg.segments[0].target, s(5));
        // Last segment: r <= a * r reads {r, a}.
        assert_eq!(vdg.segments[5].reads, vec![s(5), s(6)]);
    }

    #[test]
    fn ids_are_embedded_in_statements() {
        let mut body = fig5_body();
        let _ = Vdg::build(&mut body);
        // Root decision must be d0.
        match &body {
            Stmt::If { decision, .. } => assert_eq!(*decision, DecisionId(0)),
            _ => panic!("expected If"),
        }
    }

    #[test]
    fn partial_write_target_is_in_segment_reads() {
        let mut body = Stmt::Assign {
            lhs: LValue::PartSelect {
                base: s(1),
                hi: 3,
                lo: 0,
            },
            rhs: Expr::sig(s(2)),
            blocking: false,
            segment: SegmentId(0),
        };
        let vdg = Vdg::build(&mut body);
        assert_eq!(vdg.segments[0].reads, vec![s(1), s(2)]);
        assert!(vdg.segments[0].partial);
    }

    #[test]
    fn for_loop_contributes_one_decision() {
        let mut body = Stmt::For {
            init: Box::new(Stmt::assign(s(0), Expr::val(8, 0), true)),
            cond: Expr::bin(BinaryOp::Lt, Expr::sig(s(0)), Expr::val(8, 4)),
            step: Box::new(Stmt::assign(
                s(0),
                Expr::bin(BinaryOp::Add, Expr::sig(s(0)), Expr::val(8, 1)),
                true,
            )),
            body: Box::new(Stmt::assign(s(1), Expr::sig(s(0)), true)),
            decision: DecisionId(0),
        };
        let vdg = Vdg::build(&mut body);
        assert_eq!(vdg.decisions.len(), 1);
        assert_eq!(vdg.decisions[0].kind, DecisionKind::For);
        assert_eq!(vdg.segments.len(), 3); // init, body, step
    }

    #[test]
    fn case_decision_reads_labels() {
        let mut body = Stmt::Case {
            scrutinee: Expr::sig(s(0)),
            arms: vec![crate::stmt::CaseArm {
                labels: vec![Expr::sig(s(7))],
                body: Stmt::Nop,
            }],
            default: None,
            kind: crate::stmt::CaseKind::Exact,
            decision: DecisionId(0),
        };
        let vdg = Vdg::build(&mut body);
        assert_eq!(vdg.decisions[0].reads, vec![s(0), s(7)]);
    }
}
