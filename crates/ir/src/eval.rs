//! Generic four-state expression evaluation.
//!
//! Every engine in the framework evaluates the same [`Expr`] trees against a
//! different notion of "the current value of a signal": the good simulator
//! reads its value store, the ERASER engine reads a fault's *view* (diff
//! entry if visible, good value otherwise), the compiled baseline reads its
//! dense two-state arrays. The [`ValueSource`] trait abstracts exactly that
//! lookup, and does so **by borrow** — a signal read never clones.
//!
//! The hot entry point is [`eval_expr_into`], which evaluates an expression
//! into a caller-owned output buffer, drawing temporaries from a reusable
//! [`EvalScratch`] arena. After a few evaluations the arena holds one buffer
//! per live recursion slot and steady-state evaluation performs **zero heap
//! allocations** for designs whose signals fit in 64 bits (wider values
//! reuse their boxed words whenever the word count matches).
//!
//! [`eval_expr`] is the pure convenience wrapper (fresh scratch and output
//! per call); [`eval_expr_cloning`] is the frozen pre-change evaluator —
//! clone per signal read, fresh `LogicVec` per AST node — kept as the
//! reference oracle for property tests and as the baseline the
//! `fig7_hotpath` report measures against.

use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::ids::SignalId;
use eraser_logic::{LogicBit, LogicVec};

/// A source of current signal values.
pub trait ValueSource {
    /// The current value of `sig`, borrowed from the source's storage. Must
    /// have the signal's declared width.
    fn value(&self, sig: SignalId) -> &LogicVec;
}

impl ValueSource for [LogicVec] {
    fn value(&self, sig: SignalId) -> &LogicVec {
        &self[sig.index()]
    }
}

impl ValueSource for Vec<LogicVec> {
    fn value(&self, sig: SignalId) -> &LogicVec {
        &self[sig.index()]
    }
}

/// A reusable arena of [`LogicVec`] temporaries for expression evaluation.
///
/// The pool is filled lazily: each recursion slot takes a buffer (or a
/// fresh inline 1-bit vector, which costs no heap allocation) and returns
/// it when done. Sized once per design during warm-up, then reused across
/// all evaluations.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    /// Boxed buffers (widths over 64 bits), kept apart so width-agnostic
    /// takes can never hand a wide buffer to a narrow write — a narrow
    /// assignment would drop the box, and the next wide request would have
    /// to reallocate it. Inline-class buffers are not pooled at all: a
    /// fresh inline vector is heap-free, while pushing returned inline
    /// values here would grow the backing vector at unpredictable times
    /// (e.g. a dead-fault sweep returning a spike of diff entries).
    wide: Vec<LogicVec>,
    /// Pooled buffer lists for n-ary nodes (concatenations), so their
    /// evaluation is iterative — one list per live nesting level.
    lists: Vec<Vec<LogicVec>>,
}

impl EvalScratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an inline-class buffer (contents unspecified, no heap
    /// allocation). Width-aware callers use [`EvalScratch::take_for`] to
    /// reach the boxed buffers.
    #[inline]
    pub fn take(&mut self) -> LogicVec {
        LogicVec::default()
    }

    /// Returns a buffer to the arena for reuse. Only boxed storage is
    /// kept; inline-class buffers are dropped (freeing them costs no heap
    /// traffic).
    #[inline]
    pub fn put(&mut self, v: LogicVec) {
        if Self::width_class(v.width()) > 1 {
            self.wide.push(v);
        }
    }

    /// Takes a buffer whose storage class already matches `width` when one
    /// is pooled, falling back to [`EvalScratch::take`] otherwise.
    ///
    /// A `LogicVec` stores values up to 64 bits inline and wider values in
    /// a boxed slab sized by word count; assigning across classes reshapes
    /// the storage. Callers that know the width they are about to write
    /// (e.g. an RTL node's output) use this to keep wide buffers cycling
    /// among wide signals — on designs with >64-bit state (SHA-256) a
    /// width-blind pool would hand a just-recycled narrow buffer to a wide
    /// write and vice versa, reshaping on nearly every evaluation.
    #[inline]
    pub fn take_for(&mut self, width: u32) -> LogicVec {
        let class = Self::width_class(width);
        if class > 1 {
            if let Some(i) = self
                .wide
                .iter()
                .rposition(|v| Self::width_class(v.width()) == class)
            {
                return self.wide.swap_remove(i);
            }
        }
        // No boxed buffer of the right word count (or an inline request):
        // an inline buffer costs nothing to give up, while reshaping a
        // wrong-class boxed buffer would both drop its box and allocate.
        self.take()
    }

    /// Storage class of a width: 1 for every inline-capable width, the
    /// word count for boxed widths.
    #[inline]
    fn width_class(width: u32) -> usize {
        if width <= 64 {
            1
        } else {
            (width as usize).div_ceil(64)
        }
    }

    /// Takes an empty buffer list out of the arena.
    #[inline]
    fn take_list(&mut self) -> Vec<LogicVec> {
        self.lists.pop().unwrap_or_default()
    }

    /// Returns a buffer list, recycling its elements into the pools.
    #[inline]
    fn put_list(&mut self, mut l: Vec<LogicVec>) {
        for v in l.drain(..) {
            self.put(v);
        }
        self.lists.push(l);
    }
}

/// Evaluates `expr` against `src` with full four-state semantics, writing
/// the result into `out` (reshaped as needed) and drawing temporaries from
/// `scratch`.
///
/// The width model matches [`crate::analysis::expr_width`]; conditions with
/// unknown truth values merge ternary branches bit-wise. Bit-identical to
/// [`eval_expr_cloning`].
pub fn eval_expr_into<S: ValueSource + ?Sized>(
    expr: &Expr,
    src: &S,
    scratch: &mut EvalScratch,
    out: &mut LogicVec,
) {
    match expr {
        Expr::Const(v) => out.assign_from(v),
        Expr::Signal(s) => out.assign_from(src.value(*s)),
        Expr::Unary(op, e) => {
            eval_expr_into(e, src, scratch, out);
            match op {
                UnaryOp::Not => out.not_assign(),
                UnaryOp::Neg => out.neg_assign(),
                UnaryOp::LogicalNot => {
                    let b = out.truth().not();
                    out.assign_bit(b);
                }
                UnaryOp::RedAnd => {
                    let b = out.red_and();
                    out.assign_bit(b);
                }
                UnaryOp::RedOr => {
                    let b = out.red_or();
                    out.assign_bit(b);
                }
                UnaryOp::RedXor => {
                    let b = out.red_xor();
                    out.assign_bit(b);
                }
            }
        }
        Expr::Binary(op, l, r) => {
            eval_expr_into(l, src, scratch, out);
            let mut rv = scratch.take();
            eval_expr_into(r, src, scratch, &mut rv);
            eval_binary_assign(*op, out, &rv, scratch);
            scratch.put(rv);
        }
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            let mut c = scratch.take();
            eval_expr_into(cond, src, scratch, &mut c);
            let truth = c.truth();
            scratch.put(c);
            match truth {
                LogicBit::One => {
                    eval_expr_into(then_e, src, scratch, out);
                    let mut e = scratch.take();
                    eval_expr_into(else_e, src, scratch, &mut e);
                    let w = out.width().max(e.width());
                    out.resize_assign(w);
                    scratch.put(e);
                }
                LogicBit::Zero => {
                    let mut t = scratch.take();
                    eval_expr_into(then_e, src, scratch, &mut t);
                    eval_expr_into(else_e, src, scratch, out);
                    let w = out.width().max(t.width());
                    out.resize_assign(w);
                    scratch.put(t);
                }
                _ => {
                    eval_expr_into(then_e, src, scratch, out);
                    let mut e = scratch.take();
                    eval_expr_into(else_e, src, scratch, &mut e);
                    out.merge_x_assign(&e);
                    scratch.put(e);
                }
            }
        }
        Expr::Concat(parts) => {
            assert!(!parts.is_empty(), "concat needs at least one part");
            // Iterative over the parts (stack depth stays proportional to
            // the expression tree depth, not the part count), LSB-first.
            let mut vals = scratch.take_list();
            for p in parts.iter().rev() {
                let mut v = scratch.take();
                eval_expr_into(p, src, scratch, &mut v);
                vals.push(v);
            }
            let total: u32 = vals.iter().map(|v| v.width()).sum();
            out.make_zeros(total);
            let mut lo = 0;
            for v in &vals {
                out.assign_slice(lo, v);
                lo += v.width();
            }
            scratch.put_list(vals);
        }
        Expr::Replicate(n, e) => {
            let mut v = scratch.take();
            eval_expr_into(e, src, scratch, &mut v);
            assert!(*n > 0, "replication count must be positive");
            out.make_zeros(v.width() * n);
            for k in 0..*n {
                out.assign_slice(k * v.width(), &v);
            }
            scratch.put(v);
        }
        Expr::Slice { base, hi, lo } => src.value(*base).slice_into(*hi, *lo, out),
        Expr::Index { base, index } => {
            let mut idx = scratch.take();
            eval_expr_into(index, src, scratch, &mut idx);
            let b = src.value(*base);
            let bit = match idx.to_u64() {
                Some(i) if i <= u32::MAX as u64 => b.bit_or_x(i as u32),
                _ => LogicBit::X,
            };
            out.assign_bit(bit);
            scratch.put(idx);
        }
        Expr::IndexedPart { base, start, width } => {
            let mut st = scratch.take();
            eval_expr_into(start, src, scratch, &mut st);
            let b = src.value(*base);
            match st.to_u64() {
                Some(s) if s + *width as u64 <= u32::MAX as u64 => {
                    b.slice_into(s as u32 + width - 1, s as u32, out)
                }
                _ => out.make_x(*width),
            }
            scratch.put(st);
        }
    }
}

/// Evaluates `expr` against `src`, allocating a fresh result.
///
/// Convenience wrapper over [`eval_expr_into`] with a throwaway scratch
/// arena; use the `_into` form on hot paths.
pub fn eval_expr<S: ValueSource + ?Sized>(expr: &Expr, src: &S) -> LogicVec {
    let mut scratch = EvalScratch::new();
    let mut out = LogicVec::default();
    eval_expr_into(expr, src, &mut scratch, &mut out);
    out
}

/// Applies one binary operator in place: `acc = acc <op> rhs`.
///
/// `scratch` supplies a temporary for the few operators (multiplication)
/// that cannot accumulate into their left operand.
pub fn eval_binary_assign(
    op: BinaryOp,
    acc: &mut LogicVec,
    rhs: &LogicVec,
    scratch: &mut EvalScratch,
) {
    match op {
        BinaryOp::And => acc.and_assign(rhs),
        BinaryOp::Or => acc.or_assign(rhs),
        BinaryOp::Xor => acc.xor_assign(rhs),
        BinaryOp::Xnor => acc.xnor_assign(rhs),
        BinaryOp::Add => acc.add_assign(rhs),
        BinaryOp::Sub => acc.sub_assign(rhs),
        BinaryOp::Mul => {
            let mut tmp = scratch.take();
            acc.mul_into(rhs, &mut tmp);
            std::mem::swap(acc, &mut tmp);
            scratch.put(tmp);
        }
        BinaryOp::Div => {
            let mut tmp = scratch.take();
            acc.div_into(rhs, &mut tmp);
            std::mem::swap(acc, &mut tmp);
            scratch.put(tmp);
        }
        BinaryOp::Rem => {
            let mut tmp = scratch.take();
            acc.rem_into(rhs, &mut tmp);
            std::mem::swap(acc, &mut tmp);
            scratch.put(tmp);
        }
        BinaryOp::Shl => acc.shl_vec_assign(rhs),
        BinaryOp::Shr => acc.lshr_vec_assign(rhs),
        BinaryOp::AShr => acc.ashr_vec_assign(rhs),
        BinaryOp::Eq => {
            let b = acc.logic_eq(rhs);
            acc.assign_bit(b);
        }
        BinaryOp::Ne => {
            let b = acc.logic_ne(rhs);
            acc.assign_bit(b);
        }
        BinaryOp::CaseEq => {
            let b = LogicBit::from(acc.case_eq(rhs));
            acc.assign_bit(b);
        }
        BinaryOp::CaseNe => {
            let b = LogicBit::from(!acc.case_eq(rhs));
            acc.assign_bit(b);
        }
        BinaryOp::Lt => {
            let b = acc.lt(rhs);
            acc.assign_bit(b);
        }
        BinaryOp::Le => {
            let b = acc.le(rhs);
            acc.assign_bit(b);
        }
        BinaryOp::Gt => {
            let b = acc.gt(rhs);
            acc.assign_bit(b);
        }
        BinaryOp::Ge => {
            let b = acc.ge(rhs);
            acc.assign_bit(b);
        }
        BinaryOp::LogicalAnd => {
            let b = acc.truth().and(rhs.truth());
            acc.assign_bit(b);
        }
        BinaryOp::LogicalOr => {
            let b = acc.truth().or(rhs.truth());
            acc.assign_bit(b);
        }
    }
}

/// Evaluates one binary operator on already-computed operands, allocating
/// the result.
pub fn eval_binary(op: BinaryOp, lv: &LogicVec, rv: &LogicVec) -> LogicVec {
    match op {
        BinaryOp::And => lv.and(rv),
        BinaryOp::Or => lv.or(rv),
        BinaryOp::Xor => lv.xor(rv),
        BinaryOp::Xnor => lv.xnor(rv),
        BinaryOp::Add => lv.add(rv),
        BinaryOp::Sub => lv.sub(rv),
        BinaryOp::Mul => lv.mul(rv),
        BinaryOp::Div => lv.div(rv),
        BinaryOp::Rem => lv.rem(rv),
        BinaryOp::Shl => lv.shl_vec(rv),
        BinaryOp::Shr => lv.lshr_vec(rv),
        BinaryOp::AShr => lv.ashr_vec(rv),
        BinaryOp::Eq => LogicVec::from_bit(lv.logic_eq(rv)),
        BinaryOp::Ne => LogicVec::from_bit(lv.logic_ne(rv)),
        BinaryOp::CaseEq => LogicVec::from_bit(LogicBit::from(lv.case_eq(rv))),
        BinaryOp::CaseNe => LogicVec::from_bit(LogicBit::from(!lv.case_eq(rv))),
        BinaryOp::Lt => LogicVec::from_bit(lv.lt(rv)),
        BinaryOp::Le => LogicVec::from_bit(lv.le(rv)),
        BinaryOp::Gt => LogicVec::from_bit(lv.gt(rv)),
        BinaryOp::Ge => LogicVec::from_bit(lv.ge(rv)),
        BinaryOp::LogicalAnd => LogicVec::from_bit(lv.truth().and(rv.truth())),
        BinaryOp::LogicalOr => LogicVec::from_bit(lv.truth().or(rv.truth())),
    }
}

/// The frozen pre-change evaluator: one clone per signal read, one fresh
/// [`LogicVec`] per AST node.
///
/// Kept verbatim as (a) the oracle that property tests compare
/// [`eval_expr_into`] against, and (b) the "before" cost model that the
/// `fig7_hotpath` report binary measures the zero-allocation core against.
/// Not used by any engine.
pub fn eval_expr_cloning<S: ValueSource + ?Sized>(expr: &Expr, src: &S) -> LogicVec {
    match expr {
        Expr::Const(v) => v.clone(),
        Expr::Signal(s) => src.value(*s).clone(),
        Expr::Unary(op, e) => {
            let v = eval_expr_cloning(e, src);
            match op {
                UnaryOp::Not => v.not(),
                UnaryOp::Neg => v.neg(),
                UnaryOp::LogicalNot => LogicVec::from_bit(v.truth().not()),
                UnaryOp::RedAnd => LogicVec::from_bit(v.red_and()),
                UnaryOp::RedOr => LogicVec::from_bit(v.red_or()),
                UnaryOp::RedXor => LogicVec::from_bit(v.red_xor()),
            }
        }
        Expr::Binary(op, l, r) => {
            let lv = eval_expr_cloning(l, src);
            let rv = eval_expr_cloning(r, src);
            eval_binary(*op, &lv, &rv)
        }
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            let c = eval_expr_cloning(cond, src).truth();
            match c {
                LogicBit::One => {
                    let t = eval_expr_cloning(then_e, src);
                    let e = eval_expr_cloning(else_e, src);
                    t.resize(t.width().max(e.width()))
                }
                LogicBit::Zero => {
                    let t = eval_expr_cloning(then_e, src);
                    let e = eval_expr_cloning(else_e, src);
                    e.resize(t.width().max(e.width()))
                }
                _ => eval_expr_cloning(then_e, src).merge_x(&eval_expr_cloning(else_e, src)),
            }
        }
        Expr::Concat(parts) => {
            let vals: Vec<LogicVec> = parts.iter().map(|p| eval_expr_cloning(p, src)).collect();
            // Source order is MSB-first; concat_lsb_first wants the reverse.
            let refs: Vec<&LogicVec> = vals.iter().rev().collect();
            LogicVec::concat_lsb_first(&refs)
        }
        Expr::Replicate(n, e) => eval_expr_cloning(e, src).replicate(*n),
        Expr::Slice { base, hi, lo } => src.value(*base).slice(*hi, *lo),
        Expr::Index { base, index } => {
            let idx = eval_expr_cloning(index, src);
            let b = src.value(*base).clone();
            match idx.to_u64() {
                Some(i) if i <= u32::MAX as u64 => LogicVec::from_bit(b.bit_or_x(i as u32)),
                _ => LogicVec::from_bit(LogicBit::X),
            }
        }
        Expr::IndexedPart { base, start, width } => {
            let st = eval_expr_cloning(start, src);
            let b = src.value(*base).clone();
            match st.to_u64() {
                Some(s) if s + *width as u64 <= u32::MAX as u64 => {
                    b.slice(s as u32 + width - 1, s as u32)
                }
                _ => LogicVec::new_x(*width),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(vals: Vec<LogicVec>) -> Vec<LogicVec> {
        vals
    }

    #[test]
    fn take_for_prefers_matching_storage_class() {
        let mut s = EvalScratch::new();
        s.put(LogicVec::new_x(8));
        s.put(LogicVec::new_x(256));
        s.put(LogicVec::new_x(320));
        // A four-word request reuses the four-word box, not the five-word
        // one pushed after it.
        assert_eq!(s.take_for(200).width(), 256);
        // Inline-class buffers are never pooled: narrow requests always
        // get a fresh default (heap-free) buffer.
        assert_eq!(s.take_for(1).width(), 1);
        // No boxed buffer of the right word count: falls back to a fresh
        // inline buffer rather than reshaping the five-word box.
        assert_eq!(s.take_for(512).width(), 1);
        // The five-word box is still pooled for a matching request.
        assert_eq!(s.take_for(320).width(), 320);
    }

    #[test]
    fn arith_and_compare() {
        let s = src(vec![LogicVec::from_u64(8, 10), LogicVec::from_u64(8, 3)]);
        let e = Expr::bin(
            BinaryOp::Add,
            Expr::sig(SignalId(0)),
            Expr::sig(SignalId(1)),
        );
        assert_eq!(eval_expr(&e, &s).to_u64(), Some(13));
        let c = Expr::bin(BinaryOp::Lt, Expr::sig(SignalId(1)), Expr::sig(SignalId(0)));
        assert_eq!(eval_expr(&c, &s).to_u64(), Some(1));
    }

    #[test]
    fn ternary_selects_and_merges() {
        let s = src(vec![
            LogicVec::from_u64(1, 1),
            LogicVec::from_u64(4, 0xa),
            LogicVec::from_u64(4, 0x5),
        ]);
        let t = Expr::Ternary {
            cond: Box::new(Expr::sig(SignalId(0))),
            then_e: Box::new(Expr::sig(SignalId(1))),
            else_e: Box::new(Expr::sig(SignalId(2))),
        };
        assert_eq!(eval_expr(&t, &s).to_u64(), Some(0xa));
        let s = src(vec![
            LogicVec::new_x(1),
            LogicVec::from_u64(4, 0b1100),
            LogicVec::from_u64(4, 0b1010),
        ]);
        let v = eval_expr(&t, &s);
        assert_eq!(v.bit(3), LogicBit::One); // agree
        assert_eq!(v.bit(2), LogicBit::X);
        assert_eq!(v.bit(1), LogicBit::X);
        assert_eq!(v.bit(0), LogicBit::Zero); // agree
    }

    #[test]
    fn concat_is_msb_first() {
        let s = src(vec![LogicVec::from_u64(4, 0xa), LogicVec::from_u64(4, 0x5)]);
        let e = Expr::Concat(vec![Expr::sig(SignalId(0)), Expr::sig(SignalId(1))]);
        assert_eq!(eval_expr(&e, &s).to_u64(), Some(0xa5));
    }

    #[test]
    fn dynamic_index() {
        let s = src(vec![
            LogicVec::from_u64(8, 0b0100),
            LogicVec::from_u64(3, 2),
        ]);
        let e = Expr::Index {
            base: SignalId(0),
            index: Box::new(Expr::sig(SignalId(1))),
        };
        assert_eq!(eval_expr(&e, &s).to_u64(), Some(1));
        // Unknown index -> X.
        let s = src(vec![LogicVec::from_u64(8, 0b0100), LogicVec::new_x(3)]);
        assert_eq!(eval_expr(&e, &s).bit(0), LogicBit::X);
    }

    #[test]
    fn indexed_part_select() {
        let s = src(vec![
            LogicVec::from_u64(16, 0xabcd),
            LogicVec::from_u64(4, 4),
        ]);
        let e = Expr::IndexedPart {
            base: SignalId(0),
            start: Box::new(Expr::sig(SignalId(1))),
            width: 4,
        };
        assert_eq!(eval_expr(&e, &s).to_u64(), Some(0xc));
    }

    #[test]
    fn logical_ops_use_truth() {
        let s = src(vec![LogicVec::from_u64(8, 0), LogicVec::from_u64(8, 7)]);
        let e = Expr::bin(
            BinaryOp::LogicalOr,
            Expr::sig(SignalId(0)),
            Expr::sig(SignalId(1)),
        );
        assert_eq!(eval_expr(&e, &s).to_u64(), Some(1));
        let e = Expr::bin(
            BinaryOp::LogicalAnd,
            Expr::sig(SignalId(0)),
            Expr::sig(SignalId(1)),
        );
        assert_eq!(eval_expr(&e, &s).to_u64(), Some(0));
    }

    #[test]
    fn shift_keeps_lhs_width() {
        let s = src(vec![LogicVec::from_u64(8, 0x81), LogicVec::from_u64(4, 1)]);
        let e = Expr::bin(
            BinaryOp::Shl,
            Expr::sig(SignalId(0)),
            Expr::sig(SignalId(1)),
        );
        let v = eval_expr(&e, &s);
        assert_eq!(v.width(), 8);
        assert_eq!(v.to_u64(), Some(0x02));
    }

    #[test]
    fn into_matches_cloning_on_reused_buffers() {
        // The same scratch arena and output buffer across dissimilar
        // expressions — shapes and widths must never leak between calls.
        let s = src(vec![
            LogicVec::from_u64(8, 0xcd),
            LogicVec::from_u64(16, 0xbeef),
            LogicVec::new_x(4),
        ]);
        let exprs = vec![
            Expr::bin(
                BinaryOp::Add,
                Expr::sig(SignalId(0)),
                Expr::sig(SignalId(1)),
            ),
            Expr::Concat(vec![
                Expr::sig(SignalId(1)),
                Expr::sig(SignalId(0)),
                Expr::sig(SignalId(2)),
            ]),
            Expr::Unary(UnaryOp::RedXor, Box::new(Expr::sig(SignalId(1)))),
            Expr::bin(
                BinaryOp::Mul,
                Expr::sig(SignalId(0)),
                Expr::sig(SignalId(1)),
            ),
            Expr::Ternary {
                cond: Box::new(Expr::sig(SignalId(2))),
                then_e: Box::new(Expr::sig(SignalId(0))),
                else_e: Box::new(Expr::sig(SignalId(1))),
            },
        ];
        let mut scratch = EvalScratch::new();
        let mut out = LogicVec::default();
        for e in &exprs {
            eval_expr_into(e, &s, &mut scratch, &mut out);
            assert_eq!(out, eval_expr_cloning(e, &s));
        }
    }
}
