//! Generic four-state expression evaluation.
//!
//! Every engine in the framework evaluates the same [`Expr`] trees against a
//! different notion of "the current value of a signal": the good simulator
//! reads its value store, the ERASER engine reads a fault's *view* (diff
//! entry if visible, good value otherwise), the compiled baseline reads its
//! dense two-state arrays. The [`ValueSource`] trait abstracts exactly that
//! lookup.

use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::ids::SignalId;
use eraser_logic::{LogicBit, LogicVec};

/// A source of current signal values.
pub trait ValueSource {
    /// The current value of `sig`. Must have the signal's declared width.
    fn value(&self, sig: SignalId) -> LogicVec;
}

impl<F> ValueSource for F
where
    F: Fn(SignalId) -> LogicVec,
{
    fn value(&self, sig: SignalId) -> LogicVec {
        self(sig)
    }
}

/// Evaluates `expr` against `src` with full four-state semantics.
///
/// The width model matches [`crate::analysis::expr_width`]; conditions with
/// unknown truth values merge ternary branches bit-wise.
pub fn eval_expr<S: ValueSource + ?Sized>(expr: &Expr, src: &S) -> LogicVec {
    match expr {
        Expr::Const(v) => v.clone(),
        Expr::Signal(s) => src.value(*s),
        Expr::Unary(op, e) => {
            let v = eval_expr(e, src);
            match op {
                UnaryOp::Not => v.not(),
                UnaryOp::Neg => v.neg(),
                UnaryOp::LogicalNot => LogicVec::from_bit(v.truth().not()),
                UnaryOp::RedAnd => LogicVec::from_bit(v.red_and()),
                UnaryOp::RedOr => LogicVec::from_bit(v.red_or()),
                UnaryOp::RedXor => LogicVec::from_bit(v.red_xor()),
            }
        }
        Expr::Binary(op, l, r) => {
            let lv = eval_expr(l, src);
            let rv = eval_expr(r, src);
            eval_binary(*op, &lv, &rv)
        }
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            let c = eval_expr(cond, src).truth();
            match c {
                LogicBit::One => {
                    let t = eval_expr(then_e, src);
                    let e = eval_expr(else_e, src);
                    t.resize(t.width().max(e.width()))
                }
                LogicBit::Zero => {
                    let t = eval_expr(then_e, src);
                    let e = eval_expr(else_e, src);
                    e.resize(t.width().max(e.width()))
                }
                _ => eval_expr(then_e, src).merge_x(&eval_expr(else_e, src)),
            }
        }
        Expr::Concat(parts) => {
            let vals: Vec<LogicVec> = parts.iter().map(|p| eval_expr(p, src)).collect();
            // Source order is MSB-first; concat_lsb_first wants the reverse.
            let refs: Vec<&LogicVec> = vals.iter().rev().collect();
            LogicVec::concat_lsb_first(&refs)
        }
        Expr::Replicate(n, e) => eval_expr(e, src).replicate(*n),
        Expr::Slice { base, hi, lo } => src.value(*base).slice(*hi, *lo),
        Expr::Index { base, index } => {
            let idx = eval_expr(index, src);
            let b = src.value(*base);
            match idx.to_u64() {
                Some(i) if i <= u32::MAX as u64 => LogicVec::from_bit(b.bit_or_x(i as u32)),
                _ => LogicVec::from_bit(LogicBit::X),
            }
        }
        Expr::IndexedPart { base, start, width } => {
            let st = eval_expr(start, src);
            let b = src.value(*base);
            match st.to_u64() {
                Some(s) if s + *width as u64 <= u32::MAX as u64 => {
                    b.slice(s as u32 + width - 1, s as u32)
                }
                _ => LogicVec::new_x(*width),
            }
        }
    }
}

/// Evaluates one binary operator on already-computed operands.
pub fn eval_binary(op: BinaryOp, lv: &LogicVec, rv: &LogicVec) -> LogicVec {
    match op {
        BinaryOp::And => lv.and(rv),
        BinaryOp::Or => lv.or(rv),
        BinaryOp::Xor => lv.xor(rv),
        BinaryOp::Xnor => lv.xnor(rv),
        BinaryOp::Add => lv.add(rv),
        BinaryOp::Sub => lv.sub(rv),
        BinaryOp::Mul => lv.mul(rv),
        BinaryOp::Div => lv.div(rv),
        BinaryOp::Rem => lv.rem(rv),
        BinaryOp::Shl => lv.shl_vec(rv),
        BinaryOp::Shr => lv.lshr_vec(rv),
        BinaryOp::AShr => lv.ashr_vec(rv),
        BinaryOp::Eq => LogicVec::from_bit(lv.logic_eq(rv)),
        BinaryOp::Ne => LogicVec::from_bit(lv.logic_ne(rv)),
        BinaryOp::CaseEq => LogicVec::from_bit(LogicBit::from(lv.case_eq(rv))),
        BinaryOp::CaseNe => LogicVec::from_bit(LogicBit::from(!lv.case_eq(rv))),
        BinaryOp::Lt => LogicVec::from_bit(lv.lt(rv)),
        BinaryOp::Le => LogicVec::from_bit(lv.le(rv)),
        BinaryOp::Gt => LogicVec::from_bit(lv.gt(rv)),
        BinaryOp::Ge => LogicVec::from_bit(lv.ge(rv)),
        BinaryOp::LogicalAnd => LogicVec::from_bit(lv.truth().and(rv.truth())),
        BinaryOp::LogicalOr => LogicVec::from_bit(lv.truth().or(rv.truth())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(vals: Vec<LogicVec>) -> impl ValueSource {
        move |s: SignalId| vals[s.index()].clone()
    }

    #[test]
    fn arith_and_compare() {
        let s = src(vec![LogicVec::from_u64(8, 10), LogicVec::from_u64(8, 3)]);
        let e = Expr::bin(
            BinaryOp::Add,
            Expr::sig(SignalId(0)),
            Expr::sig(SignalId(1)),
        );
        assert_eq!(eval_expr(&e, &s).to_u64(), Some(13));
        let c = Expr::bin(BinaryOp::Lt, Expr::sig(SignalId(1)), Expr::sig(SignalId(0)));
        assert_eq!(eval_expr(&c, &s).to_u64(), Some(1));
    }

    #[test]
    fn ternary_selects_and_merges() {
        let s = src(vec![
            LogicVec::from_u64(1, 1),
            LogicVec::from_u64(4, 0xa),
            LogicVec::from_u64(4, 0x5),
        ]);
        let t = Expr::Ternary {
            cond: Box::new(Expr::sig(SignalId(0))),
            then_e: Box::new(Expr::sig(SignalId(1))),
            else_e: Box::new(Expr::sig(SignalId(2))),
        };
        assert_eq!(eval_expr(&t, &s).to_u64(), Some(0xa));
        let s = src(vec![
            LogicVec::new_x(1),
            LogicVec::from_u64(4, 0b1100),
            LogicVec::from_u64(4, 0b1010),
        ]);
        let v = eval_expr(&t, &s);
        assert_eq!(v.bit(3), LogicBit::One); // agree
        assert_eq!(v.bit(2), LogicBit::X);
        assert_eq!(v.bit(1), LogicBit::X);
        assert_eq!(v.bit(0), LogicBit::Zero); // agree
    }

    #[test]
    fn concat_is_msb_first() {
        let s = src(vec![LogicVec::from_u64(4, 0xa), LogicVec::from_u64(4, 0x5)]);
        let e = Expr::Concat(vec![Expr::sig(SignalId(0)), Expr::sig(SignalId(1))]);
        assert_eq!(eval_expr(&e, &s).to_u64(), Some(0xa5));
    }

    #[test]
    fn dynamic_index() {
        let s = src(vec![
            LogicVec::from_u64(8, 0b0100),
            LogicVec::from_u64(3, 2),
        ]);
        let e = Expr::Index {
            base: SignalId(0),
            index: Box::new(Expr::sig(SignalId(1))),
        };
        assert_eq!(eval_expr(&e, &s).to_u64(), Some(1));
        // Unknown index -> X.
        let s = src(vec![LogicVec::from_u64(8, 0b0100), LogicVec::new_x(3)]);
        assert_eq!(eval_expr(&e, &s).bit(0), LogicBit::X);
    }

    #[test]
    fn indexed_part_select() {
        let s = src(vec![
            LogicVec::from_u64(16, 0xabcd),
            LogicVec::from_u64(4, 4),
        ]);
        let e = Expr::IndexedPart {
            base: SignalId(0),
            start: Box::new(Expr::sig(SignalId(1))),
            width: 4,
        };
        assert_eq!(eval_expr(&e, &s).to_u64(), Some(0xc));
    }

    #[test]
    fn logical_ops_use_truth() {
        let s = src(vec![LogicVec::from_u64(8, 0), LogicVec::from_u64(8, 7)]);
        let e = Expr::bin(
            BinaryOp::LogicalOr,
            Expr::sig(SignalId(0)),
            Expr::sig(SignalId(1)),
        );
        assert_eq!(eval_expr(&e, &s).to_u64(), Some(1));
        let e = Expr::bin(
            BinaryOp::LogicalAnd,
            Expr::sig(SignalId(0)),
            Expr::sig(SignalId(1)),
        );
        assert_eq!(eval_expr(&e, &s).to_u64(), Some(0));
    }

    #[test]
    fn shift_keeps_lhs_width() {
        let s = src(vec![LogicVec::from_u64(8, 0x81), LogicVec::from_u64(4, 1)]);
        let e = Expr::bin(
            BinaryOp::Shl,
            Expr::sig(SignalId(0)),
            Expr::sig(SignalId(1)),
        );
        let v = eval_expr(&e, &s);
        assert_eq!(v.width(), 8);
        assert_eq!(v.to_u64(), Some(0x02));
    }
}
