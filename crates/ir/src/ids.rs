//! Typed index newtypes for the design graph.
//!
//! All graph entities are stored in flat vectors inside [`crate::Design`];
//! these newtypes keep the index spaces statically distinct (signals vs RTL
//! nodes vs behavioral nodes vs VDG decisions/segments).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Constructs from a raw index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a [`crate::Signal`] in a design.
    SignalId,
    "s"
);
id_type!(
    /// Identifies an [`crate::RtlNode`] in a design.
    RtlNodeId,
    "n"
);
id_type!(
    /// Identifies a [`crate::BehavioralNode`] in a design.
    BehavioralId,
    "b"
);
id_type!(
    /// Identifies a path decision node in a behavioral body's VDG.
    DecisionId,
    "d"
);
id_type!(
    /// Identifies a path dependency segment in a behavioral body's VDG.
    SegmentId,
    "g"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_format() {
        let s = SignalId::from_index(7);
        assert_eq!(s.index(), 7);
        assert_eq!(format!("{s}"), "s7");
        assert_eq!(format!("{:?}", RtlNodeId(3)), "n3");
        assert_eq!(format!("{}", BehavioralId(1)), "b1");
        assert_eq!(format!("{}", DecisionId(0)), "d0");
        assert_eq!(format!("{}", SegmentId(9)), "g9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(SignalId(1) < SignalId(2));
    }
}
