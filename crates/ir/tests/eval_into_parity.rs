//! Property test: the scratch-arena evaluator (`eval_expr_into`) is
//! bit-identical to the frozen pre-change evaluator (`eval_expr_cloning`)
//! on randomized expression trees — with the scratch arena and the output
//! buffer reused across every case, so any width/shape leakage between
//! evaluations would be caught.
//!
//! Signals span the width set {1, 7, 64, 65, 128} and all four logic
//! states; trees exercise every operator, including concat, replication,
//! dynamic indexing and ternaries with unknown conditions.

use eraser_ir::{
    eval_expr_cloning, eval_expr_into, BinaryOp, EvalScratch, Expr, SignalId, UnaryOp,
};
use eraser_logic::{LogicBit, LogicVec};

const CASES: usize = 300;
const WIDTHS: [u32; 5] = [1, 7, 64, 65, 128];

struct XorShift {
    state: u64,
}

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift { state: seed | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    fn vec(&mut self, width: u32) -> LogicVec {
        let bits: Vec<LogicBit> = (0..width)
            .map(|_| match self.below(4) {
                0 => LogicBit::Zero,
                1 => LogicBit::One,
                2 => LogicBit::Z,
                _ => LogicBit::X,
            })
            .collect();
        LogicVec::from_bits(&bits)
    }
}

const BINOPS: [BinaryOp; 22] = [
    BinaryOp::And,
    BinaryOp::Or,
    BinaryOp::Xor,
    BinaryOp::Xnor,
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::Rem,
    BinaryOp::Shl,
    BinaryOp::Shr,
    BinaryOp::AShr,
    BinaryOp::Eq,
    BinaryOp::Ne,
    BinaryOp::CaseEq,
    BinaryOp::CaseNe,
    BinaryOp::Lt,
    BinaryOp::Le,
    BinaryOp::Gt,
    BinaryOp::Ge,
    BinaryOp::LogicalAnd,
    BinaryOp::LogicalOr,
];

const UNOPS: [UnaryOp; 6] = [
    UnaryOp::Not,
    UnaryOp::Neg,
    UnaryOp::LogicalNot,
    UnaryOp::RedAnd,
    UnaryOp::RedOr,
    UnaryOp::RedXor,
];

/// A random expression tree over `n_sigs` signals, `depth` levels deep.
fn gen_expr(rng: &mut XorShift, n_sigs: u32, sig_width: &dyn Fn(u32) -> u32, depth: u32) -> Expr {
    let sig = rng.below(n_sigs as u64) as u32;
    if depth == 0 {
        return match rng.below(3) {
            0 => {
                let w = WIDTHS[rng.below(WIDTHS.len() as u64) as usize];
                Expr::Const(rng.vec(w))
            }
            _ => Expr::sig(SignalId(sig)),
        };
    }
    let sub = |rng: &mut XorShift| gen_expr(rng, n_sigs, sig_width, depth - 1);
    match rng.below(8) {
        0 => Expr::Unary(
            UNOPS[rng.below(UNOPS.len() as u64) as usize],
            Box::new(sub(rng)),
        ),
        1 | 2 => Expr::bin(
            BINOPS[rng.below(BINOPS.len() as u64) as usize],
            sub(rng),
            sub(rng),
        ),
        3 => Expr::Ternary {
            cond: Box::new(sub(rng)),
            then_e: Box::new(sub(rng)),
            else_e: Box::new(sub(rng)),
        },
        4 => {
            let n = 1 + rng.below(3) as usize;
            Expr::Concat((0..n).map(|_| sub(rng)).collect())
        }
        5 => Expr::Replicate(1 + rng.below(3) as u32, Box::new(sub(rng))),
        6 => {
            let w = sig_width(sig);
            let hi = rng.below(w as u64 + 4) as u32;
            let lo = rng.below(hi as u64 + 1) as u32;
            Expr::Slice {
                base: SignalId(sig),
                hi,
                lo,
            }
        }
        _ => Expr::Index {
            base: SignalId(sig),
            index: Box::new(sub(rng)),
        },
    }
}

#[test]
fn eval_expr_into_matches_cloning_oracle_with_reused_buffers() {
    let mut rng = XorShift::new(0x0f2e7a11);
    // One scratch arena and one output buffer across ALL cases — the point
    // of the test is that nothing leaks between evaluations.
    let mut scratch = EvalScratch::new();
    let mut out = LogicVec::default();
    for case in 0..CASES {
        let n_sigs = 1 + rng.below(6) as u32;
        let widths: Vec<u32> = (0..n_sigs)
            .map(|_| WIDTHS[rng.below(WIDTHS.len() as u64) as usize])
            .collect();
        let vals: Vec<LogicVec> = widths.iter().map(|&w| rng.vec(w)).collect();
        let widths_ref = widths.clone();
        let depth = 1 + rng.below(4) as u32;
        let expr = gen_expr(
            &mut rng,
            n_sigs,
            &move |s: u32| widths_ref[s as usize],
            depth,
        );
        let expect = eval_expr_cloning(&expr, &vals);
        eval_expr_into(&expr, &vals, &mut scratch, &mut out);
        assert_eq!(
            out, expect,
            "case {case}: eval_expr_into diverged from the cloning oracle\nexpr: {expr:?}"
        );
    }
}

#[test]
fn indexed_part_parity_including_out_of_range() {
    let mut rng = XorShift::new(0x77aa);
    let mut scratch = EvalScratch::new();
    let mut out = LogicVec::default();
    for _ in 0..CASES {
        let w = WIDTHS[rng.below(WIDTHS.len() as u64) as usize];
        let vals = vec![rng.vec(w), rng.vec(8)];
        let expr = Expr::IndexedPart {
            base: SignalId(0),
            start: Box::new(Expr::sig(SignalId(1))),
            width: 1 + rng.below(16) as u32,
        };
        let expect = eval_expr_cloning(&expr, &vals);
        eval_expr_into(&expr, &vals, &mut scratch, &mut out);
        assert_eq!(out, expect);
    }
}
