//! Property test: the compiled-tape backend ([`compile_expr`] +
//! [`run_tape`]) is bit-identical to the frozen cloning oracle
//! (`eval_expr_cloning`) — and therefore to the tree walker — on randomized
//! expression trees, with one [`TapeScratch`] and one output buffer reused
//! across every case so slot-shape leakage between tapes would be caught.
//!
//! Signals span the width set {1, 7, 64, 65, 128}, which exercises both
//! the single-word fast-path opcodes (`Bin64`, `Un64`, `Mux64`,
//! `Concat64`, `Repl64`) and the general instructions, plus the fast/slow
//! boundary where one operand is inline and the other is not.

use eraser_ir::{
    compile_expr, eval_expr_cloning, run_tape, BinaryOp, Expr, SignalId, TapeScratch, UnaryOp,
};
use eraser_logic::{LogicBit, LogicVec};

const CASES: usize = 400;
const WIDTHS: [u32; 5] = [1, 7, 64, 65, 128];

struct XorShift {
    state: u64,
}

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift { state: seed | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    fn vec(&mut self, width: u32) -> LogicVec {
        let bits: Vec<LogicBit> = (0..width)
            .map(|_| match self.below(4) {
                0 => LogicBit::Zero,
                1 => LogicBit::One,
                2 => LogicBit::Z,
                _ => LogicBit::X,
            })
            .collect();
        LogicVec::from_bits(&bits)
    }
}

const BINOPS: [BinaryOp; 22] = [
    BinaryOp::And,
    BinaryOp::Or,
    BinaryOp::Xor,
    BinaryOp::Xnor,
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::Rem,
    BinaryOp::Shl,
    BinaryOp::Shr,
    BinaryOp::AShr,
    BinaryOp::Eq,
    BinaryOp::Ne,
    BinaryOp::CaseEq,
    BinaryOp::CaseNe,
    BinaryOp::Lt,
    BinaryOp::Le,
    BinaryOp::Gt,
    BinaryOp::Ge,
    BinaryOp::LogicalAnd,
    BinaryOp::LogicalOr,
];

const UNOPS: [UnaryOp; 6] = [
    UnaryOp::Not,
    UnaryOp::Neg,
    UnaryOp::LogicalNot,
    UnaryOp::RedAnd,
    UnaryOp::RedOr,
    UnaryOp::RedXor,
];

/// A random expression tree over `n_sigs` signals, `depth` levels deep
/// (the same distribution as the tree-walker parity suite, plus indexed
/// part selects).
fn gen_expr(rng: &mut XorShift, n_sigs: u32, sig_width: &dyn Fn(u32) -> u32, depth: u32) -> Expr {
    let sig = rng.below(n_sigs as u64) as u32;
    if depth == 0 {
        return match rng.below(3) {
            0 => {
                let w = WIDTHS[rng.below(WIDTHS.len() as u64) as usize];
                Expr::Const(rng.vec(w))
            }
            _ => Expr::sig(SignalId(sig)),
        };
    }
    let sub = |rng: &mut XorShift| gen_expr(rng, n_sigs, sig_width, depth - 1);
    match rng.below(9) {
        0 => Expr::Unary(
            UNOPS[rng.below(UNOPS.len() as u64) as usize],
            Box::new(sub(rng)),
        ),
        1 | 2 => Expr::bin(
            BINOPS[rng.below(BINOPS.len() as u64) as usize],
            sub(rng),
            sub(rng),
        ),
        3 => Expr::Ternary {
            cond: Box::new(sub(rng)),
            then_e: Box::new(sub(rng)),
            else_e: Box::new(sub(rng)),
        },
        4 => {
            let n = 1 + rng.below(3) as usize;
            Expr::Concat((0..n).map(|_| sub(rng)).collect())
        }
        5 => Expr::Replicate(1 + rng.below(3) as u32, Box::new(sub(rng))),
        6 => {
            let w = sig_width(sig);
            let hi = rng.below(w as u64 + 4) as u32;
            let lo = rng.below(hi as u64 + 1) as u32;
            Expr::Slice {
                base: SignalId(sig),
                hi,
                lo,
            }
        }
        7 => Expr::IndexedPart {
            base: SignalId(sig),
            start: Box::new(sub(rng)),
            width: 1 + rng.below(16) as u32,
        },
        _ => Expr::Index {
            base: SignalId(sig),
            index: Box::new(sub(rng)),
        },
    }
}

#[test]
fn tape_matches_cloning_oracle_with_reused_scratch() {
    let mut rng = XorShift::new(0x7a9e0001);
    // One scratch arena and one output buffer across ALL cases — slot
    // shapes must never leak between tapes.
    let mut scratch = TapeScratch::new();
    let mut out = LogicVec::default();
    for case in 0..CASES {
        let n_sigs = 1 + rng.below(6) as u32;
        let widths: Vec<u32> = (0..n_sigs)
            .map(|_| WIDTHS[rng.below(WIDTHS.len() as u64) as usize])
            .collect();
        let vals: Vec<LogicVec> = widths.iter().map(|&w| rng.vec(w)).collect();
        let depth = 1 + rng.below(4) as u32;
        let expr = gen_expr(&mut rng, n_sigs, &|s: u32| widths[s as usize], depth);
        let tape = compile_expr(&expr, &|s| widths[s.index()]);
        let expect = eval_expr_cloning(&expr, &vals);
        run_tape(&tape, &vals, &mut scratch, &mut out);
        assert_eq!(
            out, expect,
            "case {case}: tape diverged from the cloning oracle\nexpr: {expr:?}\ntape: {tape:?}"
        );
    }
}

#[test]
fn recompiling_the_same_expression_is_deterministic() {
    let mut rng = XorShift::new(0xdead77);
    for _ in 0..40 {
        let widths = [8u32, 64, 128];
        let expr = gen_expr(&mut rng, 3, &|s: u32| widths[s as usize], 3);
        let a = compile_expr(&expr, &|s| widths[s.index()]);
        let b = compile_expr(&expr, &|s| widths[s.index()]);
        assert_eq!(a, b);
    }
}

/// Defined shift amounts wider than 64 bits must saturate through the tape
/// exactly as through the fixed `LogicVec` shifts — no all-`X` poisoning.
#[test]
fn tape_wide_defined_shift_amounts_saturate() {
    let widths = |_: SignalId| 0u32; // unused: expression has no signal leaves
    let mut amt = LogicVec::zeros(96);
    amt.set_bit(70, LogicBit::One);
    for (op, expect) in [
        (BinaryOp::Shl, LogicVec::zeros(8)),
        (BinaryOp::Shr, LogicVec::zeros(8)),
        (BinaryOp::AShr, LogicVec::ones(8)),
    ] {
        let e = Expr::bin(
            op,
            Expr::Const(LogicVec::from_u64(8, 0x80)),
            Expr::Const(amt.clone()),
        );
        let tape = compile_expr(&e, &widths);
        let mut scratch = TapeScratch::new();
        let mut out = LogicVec::default();
        let vals: Vec<LogicVec> = Vec::new();
        run_tape(&tape, vals.as_slice(), &mut scratch, &mut out);
        assert_eq!(out, expect, "{op:?}");
        assert_eq!(out, eval_expr_cloning(&e, vals.as_slice()), "{op:?}");
    }
}
