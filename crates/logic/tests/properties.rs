//! Property-based tests for the four-state value system.
//!
//! Implemented as a dependency-free randomized harness: each property is
//! checked against a few hundred cases drawn from a fixed-seed LCG, so the
//! suite is deterministic across runs and platforms while still sweeping
//! the operand space the way a proptest-style generator would.

use eraser_logic::{LogicBit, LogicVec};

const CASES: usize = 300;

/// Deterministic 64-bit LCG (same constants as the stimulus generators).
struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 1 ^ self.state >> 33
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A width in 1..=64 and a value masked to it.
    fn narrow(&mut self) -> (u32, u64) {
        let width = 1 + self.below(64) as u32;
        (width, mask(width, self.next_u64()))
    }

    /// An arbitrary four-state vector of width 1..=200.
    fn any_vec(&mut self) -> LogicVec {
        let width = 1 + self.below(200) as u32;
        let bits: Vec<LogicBit> = (0..width)
            .map(|_| match self.below(4) {
                0 => LogicBit::Zero,
                1 => LogicBit::One,
                2 => LogicBit::Z,
                _ => LogicBit::X,
            })
            .collect();
        LogicVec::from_bits(&bits)
    }
}

fn mask(width: u32, v: u64) -> u64 {
    if width >= 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

#[test]
fn u64_roundtrip() {
    let mut rng = Rng::new(1);
    for _ in 0..CASES {
        let (w, v) = rng.narrow();
        assert_eq!(LogicVec::from_u64(w, v).to_u64(), Some(v));
    }
}

#[test]
fn add_matches_wrapping_u64() {
    let mut rng = Rng::new(2);
    for _ in 0..CASES {
        let (w, a) = rng.narrow();
        let b = mask(w, rng.next_u64());
        let sum = LogicVec::from_u64(w, a).add(&LogicVec::from_u64(w, b));
        assert_eq!(sum.to_u64(), Some(mask(w, a.wrapping_add(b))));
    }
}

#[test]
fn sub_is_add_inverse() {
    let mut rng = Rng::new(3);
    for _ in 0..CASES {
        let (w, a) = rng.narrow();
        let b = mask(w, rng.next_u64());
        let av = LogicVec::from_u64(w, a);
        let bv = LogicVec::from_u64(w, b);
        assert_eq!(av.add(&bv).sub(&bv), av);
    }
}

#[test]
fn mul_matches_wrapping_u64() {
    let mut rng = Rng::new(4);
    for _ in 0..CASES {
        let (w, a) = rng.narrow();
        let b = mask(w, rng.next_u64());
        let prod = LogicVec::from_u64(w, a).mul(&LogicVec::from_u64(w, b));
        let expect = mask(w, (a as u128).wrapping_mul(b as u128) as u64);
        assert_eq!(prod.to_u64(), Some(expect), "width {w}: {a} * {b}");
    }
}

#[test]
fn div_rem_reconstruct() {
    let mut rng = Rng::new(5);
    for _ in 0..CASES {
        let (w, a) = rng.narrow();
        let b = mask(w, rng.next_u64());
        if b == 0 {
            continue;
        }
        let av = LogicVec::from_u64(w, a);
        let bv = LogicVec::from_u64(w, b);
        let (q, r) = av.div_rem(&bv);
        assert_eq!(q.to_u64(), Some(a / b));
        assert_eq!(r.to_u64(), Some(a % b));
        // a = q*b + r
        assert_eq!(q.mul(&bv).add(&r).to_u64(), Some(a));
    }
}

#[test]
fn wide_div_rem_matches_u128() {
    let mut rng = Rng::new(6);
    for _ in 0..CASES {
        // Exercise the bit-serial path with 128-bit operands.
        let a = rng.next_u64();
        let b = 1 + rng.below(u64::MAX);
        let av = LogicVec::from_u64(128, a);
        let bv = LogicVec::from_u64(128, b);
        let (q, r) = av.div_rem(&bv);
        assert_eq!(q.to_u64(), Some(a / b));
        assert_eq!(r.to_u64(), Some(a % b));
    }
}

#[test]
fn bitwise_matches_u64() {
    let mut rng = Rng::new(7);
    for _ in 0..CASES {
        let (w, a) = rng.narrow();
        let b = mask(w, rng.next_u64());
        let av = LogicVec::from_u64(w, a);
        let bv = LogicVec::from_u64(w, b);
        assert_eq!(av.and(&bv).to_u64(), Some(a & b));
        assert_eq!(av.or(&bv).to_u64(), Some(a | b));
        assert_eq!(av.xor(&bv).to_u64(), Some(a ^ b));
        assert_eq!(av.not().to_u64(), Some(mask(w, !a)));
    }
}

#[test]
fn shifts_match_u64() {
    let mut rng = Rng::new(8);
    for _ in 0..CASES {
        let (w, a) = rng.narrow();
        let amt = rng.below(80) as u32;
        let av = LogicVec::from_u64(w, a);
        let expect_shl = if amt >= w { 0 } else { mask(w, a << amt) };
        let expect_shr = if amt >= 64 { 0 } else { a >> amt };
        assert_eq!(av.shl(amt).to_u64(), Some(expect_shl));
        assert_eq!(
            av.lshr(amt).to_u64(),
            Some(if amt >= w { 0 } else { expect_shr })
        );
    }
}

#[test]
fn compare_matches_u64() {
    let mut rng = Rng::new(9);
    for _ in 0..CASES {
        let (w, a) = rng.narrow();
        let b = mask(w, rng.next_u64());
        let av = LogicVec::from_u64(w, a);
        let bv = LogicVec::from_u64(w, b);
        assert_eq!(av.lt(&bv), LogicBit::from(a < b));
        assert_eq!(av.le(&bv), LogicBit::from(a <= b));
        assert_eq!(av.logic_eq(&bv), LogicBit::from(a == b));
    }
}

#[test]
fn not_is_involution_on_defined() {
    let mut rng = Rng::new(10);
    for _ in 0..CASES {
        let (w, a) = rng.narrow();
        let av = LogicVec::from_u64(w, a);
        assert_eq!(av.not().not(), av);
    }
}

#[test]
fn de_morgan_on_defined() {
    let mut rng = Rng::new(11);
    for _ in 0..CASES {
        let (w, a) = rng.narrow();
        let b = mask(w, rng.next_u64());
        let av = LogicVec::from_u64(w, a);
        let bv = LogicVec::from_u64(w, b);
        assert_eq!(av.and(&bv).not(), av.not().or(&bv.not()));
    }
}

#[test]
fn concat_slice_roundtrip() {
    let mut rng = Rng::new(12);
    for _ in 0..CASES {
        let v = rng.any_vec();
        let w = rng.any_vec();
        let c = LogicVec::concat_lsb_first(&[&v, &w]);
        assert_eq!(c.width(), v.width() + w.width());
        assert_eq!(c.slice(v.width() - 1, 0), v);
        assert_eq!(c.slice(c.width() - 1, v.width()), w);
    }
}

#[test]
fn replicate_slices_back() {
    let mut rng = Rng::new(13);
    for _ in 0..CASES {
        let v = rng.any_vec();
        let n = 1 + rng.below(3) as u32;
        let r = v.replicate(n);
        for k in 0..n {
            assert_eq!(r.slice((k + 1) * v.width() - 1, k * v.width()), v);
        }
    }
}

#[test]
fn resize_preserves_low_bits() {
    let mut rng = Rng::new(14);
    for _ in 0..CASES {
        let v = rng.any_vec();
        let extra = rng.below(70) as u32;
        let grown = v.resize(v.width() + extra);
        assert_eq!(grown.slice(v.width() - 1, 0), v);
        for i in v.width()..grown.width() {
            assert_eq!(grown.bit(i), LogicBit::Zero);
        }
    }
}

#[test]
fn case_eq_is_exact_identity() {
    let mut rng = Rng::new(15);
    for _ in 0..CASES {
        let v = rng.any_vec();
        assert!(v.case_eq(&v.clone()));
    }
}

#[test]
fn display_parse_roundtrip() {
    let mut rng = Rng::new(16);
    for _ in 0..CASES {
        let v = rng.any_vec();
        let s = v.to_string();
        let back = LogicVec::parse_literal(&s).unwrap();
        assert_eq!(back, v, "roundtrip through `{s}`");
    }
}

#[test]
fn xor_with_self_is_zero_on_defined() {
    let mut rng = Rng::new(17);
    for _ in 0..CASES {
        let (w, a) = rng.narrow();
        let av = LogicVec::from_u64(w, a);
        assert!(av.xor(&av).is_zero());
    }
}

#[test]
fn unknown_poisons_arithmetic() {
    let mut rng = Rng::new(18);
    let mut checked = 0;
    while checked < CASES {
        let v = rng.any_vec();
        if !v.has_unknown() {
            continue;
        }
        checked += 1;
        let (w, a) = rng.narrow();
        let d = LogicVec::from_u64(w, a);
        assert!(v.add(&d).has_unknown());
        assert!(v.mul(&d).has_unknown());
        assert_eq!(v.logic_eq(&d), LogicBit::X);
        assert_eq!(v.lt(&d), LogicBit::X);
    }
}
