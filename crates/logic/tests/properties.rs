//! Property-based tests for the four-state value system.

use eraser_logic::{LogicBit, LogicVec};
use proptest::prelude::*;

fn mask(width: u32, v: u64) -> u64 {
    if width >= 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

prop_compose! {
    /// A width in 1..=64 and a value masked to it.
    fn narrow()(width in 1u32..=64, raw in any::<u64>()) -> (u32, u64) {
        (width, mask(width, raw))
    }
}

prop_compose! {
    /// An arbitrary four-state vector of width 1..=200.
    fn any_vec()(width in 1u32..=200, seed in proptest::collection::vec(0u8..4, 1..=200))
        -> LogicVec
    {
        let bits: Vec<LogicBit> = (0..width as usize)
            .map(|i| match seed[i % seed.len()] {
                0 => LogicBit::Zero,
                1 => LogicBit::One,
                2 => LogicBit::Z,
                _ => LogicBit::X,
            })
            .collect();
        LogicVec::from_bits(&bits)
    }
}

proptest! {
    #[test]
    fn u64_roundtrip((w, v) in narrow()) {
        prop_assert_eq!(LogicVec::from_u64(w, v).to_u64(), Some(v));
    }

    #[test]
    fn add_matches_wrapping_u64((w, a) in narrow(), (_, braw) in narrow()) {
        let b = mask(w, braw);
        let sum = LogicVec::from_u64(w, a).add(&LogicVec::from_u64(w, b));
        prop_assert_eq!(sum.to_u64(), Some(mask(w, a.wrapping_add(b))));
    }

    #[test]
    fn sub_is_add_inverse((w, a) in narrow(), (_, braw) in narrow()) {
        let b = mask(w, braw);
        let av = LogicVec::from_u64(w, a);
        let bv = LogicVec::from_u64(w, b);
        prop_assert_eq!(av.add(&bv).sub(&bv), av);
    }

    #[test]
    fn mul_matches_wrapping_u64((w, a) in narrow(), (_, braw) in narrow()) {
        let b = mask(w, braw);
        let prod = LogicVec::from_u64(w, a).mul(&LogicVec::from_u64(w, b));
        let expect = mask(w, (a as u128).wrapping_mul(b as u128) as u64);
        prop_assert_eq!(prod.to_u64(), Some(expect));
    }

    #[test]
    fn div_rem_reconstruct((w, a) in narrow(), (_, braw) in narrow()) {
        let b = mask(w, braw);
        prop_assume!(b != 0);
        let av = LogicVec::from_u64(w, a);
        let bv = LogicVec::from_u64(w, b);
        let (q, r) = av.div_rem(&bv);
        prop_assert_eq!(q.to_u64(), Some(a / b));
        prop_assert_eq!(r.to_u64(), Some(a % b));
        // a = q*b + r
        prop_assert_eq!(q.mul(&bv).add(&r).to_u64(), Some(a));
    }

    #[test]
    fn wide_div_rem_matches_u128(a in any::<u64>(), b in 1u64..) {
        // Exercise the bit-serial path with 128-bit operands.
        let av = LogicVec::from_u64(128, a);
        let bv = LogicVec::from_u64(128, b);
        let (q, r) = av.div_rem(&bv);
        prop_assert_eq!(q.to_u64(), Some(a / b));
        prop_assert_eq!(r.to_u64(), Some(a % b));
    }

    #[test]
    fn bitwise_matches_u64((w, a) in narrow(), (_, braw) in narrow()) {
        let b = mask(w, braw);
        let av = LogicVec::from_u64(w, a);
        let bv = LogicVec::from_u64(w, b);
        prop_assert_eq!(av.and(&bv).to_u64(), Some(a & b));
        prop_assert_eq!(av.or(&bv).to_u64(), Some(a | b));
        prop_assert_eq!(av.xor(&bv).to_u64(), Some(a ^ b));
        prop_assert_eq!(av.not().to_u64(), Some(mask(w, !a)));
    }

    #[test]
    fn shifts_match_u64((w, a) in narrow(), amt in 0u32..80) {
        let av = LogicVec::from_u64(w, a);
        let expect_shl = if amt >= w { 0 } else { mask(w, a << amt) };
        let expect_shr = if amt >= 64 { 0 } else { a >> amt };
        prop_assert_eq!(av.shl(amt).to_u64(), Some(expect_shl));
        prop_assert_eq!(av.lshr(amt).to_u64(), Some(if amt >= w { 0 } else { expect_shr }));
    }

    #[test]
    fn compare_matches_u64((w, a) in narrow(), (_, braw) in narrow()) {
        let b = mask(w, braw);
        let av = LogicVec::from_u64(w, a);
        let bv = LogicVec::from_u64(w, b);
        prop_assert_eq!(av.lt(&bv), LogicBit::from(a < b));
        prop_assert_eq!(av.le(&bv), LogicBit::from(a <= b));
        prop_assert_eq!(av.logic_eq(&bv), LogicBit::from(a == b));
    }

    #[test]
    fn not_is_involution_on_defined((w, a) in narrow()) {
        let av = LogicVec::from_u64(w, a);
        prop_assert_eq!(av.not().not(), av);
    }

    #[test]
    fn de_morgan_on_defined((w, a) in narrow(), (_, braw) in narrow()) {
        let b = mask(w, braw);
        let av = LogicVec::from_u64(w, a);
        let bv = LogicVec::from_u64(w, b);
        prop_assert_eq!(av.and(&bv).not(), av.not().or(&bv.not()));
    }

    #[test]
    fn concat_slice_roundtrip(v in any_vec(), w in any_vec()) {
        let c = LogicVec::concat_lsb_first(&[&v, &w]);
        prop_assert_eq!(c.width(), v.width() + w.width());
        prop_assert_eq!(c.slice(v.width() - 1, 0), v.clone());
        prop_assert_eq!(c.slice(c.width() - 1, v.width()), w);
    }

    #[test]
    fn replicate_slices_back(v in any_vec(), n in 1u32..4) {
        let r = v.replicate(n);
        for k in 0..n {
            prop_assert_eq!(r.slice((k + 1) * v.width() - 1, k * v.width()), v.clone());
        }
    }

    #[test]
    fn resize_preserves_low_bits(v in any_vec(), extra in 0u32..70) {
        let grown = v.resize(v.width() + extra);
        prop_assert_eq!(grown.slice(v.width() - 1, 0), v.clone());
        for i in v.width()..grown.width() {
            prop_assert_eq!(grown.bit(i), LogicBit::Zero);
        }
    }

    #[test]
    fn case_eq_is_exact_identity(v in any_vec()) {
        prop_assert!(v.case_eq(&v.clone()));
    }

    #[test]
    fn display_parse_roundtrip(v in any_vec()) {
        let s = v.to_string();
        let back = LogicVec::parse_literal(&s).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn xor_with_self_is_zero_on_defined((w, a) in narrow()) {
        let av = LogicVec::from_u64(w, a);
        prop_assert!(av.xor(&av).is_zero());
    }

    #[test]
    fn unknown_poisons_arithmetic(v in any_vec(), (w, a) in narrow()) {
        prop_assume!(v.has_unknown());
        let d = LogicVec::from_u64(w, a);
        prop_assert!(v.add(&d).has_unknown());
        prop_assert!(v.mul(&d).has_unknown());
        prop_assert_eq!(v.logic_eq(&d), LogicBit::X);
        prop_assert_eq!(v.lt(&d), LogicBit::X);
    }
}
