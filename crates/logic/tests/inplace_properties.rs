//! Property tests for the in-place (`*_assign` / `*_into`) operator
//! variants: every one must be bit-identical to an independent per-bit /
//! wide-integer oracle — and to its pure counterpart — across the width set
//! {1, 7, 64, 65, 128} and all four logic states, including when the output
//! buffer is reused dirty across calls of different widths and shapes.
//!
//! Dependency-free: cases are drawn from a fixed-seed xorshift64* stream,
//! so the suite is deterministic across runs and platforms.

use eraser_logic::{LogicBit, LogicVec};

const CASES: usize = 400;
const WIDTHS: [u32; 5] = [1, 7, 64, 65, 128];

/// Deterministic xorshift64* generator.
struct XorShift {
    state: u64,
}

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift {
            state: seed | 1, // never zero
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    fn width(&mut self) -> u32 {
        WIDTHS[self.below(WIDTHS.len() as u64) as usize]
    }

    fn bit(&mut self, defined_only: bool) -> LogicBit {
        match self.below(if defined_only { 2 } else { 4 }) {
            0 => LogicBit::Zero,
            1 => LogicBit::One,
            2 => LogicBit::Z,
            _ => LogicBit::X,
        }
    }

    /// A four-state vector of the given width; `defined_only` restricts to
    /// 0/1 bits (for the integer-arithmetic oracles).
    fn vec(&mut self, width: u32, defined_only: bool) -> LogicVec {
        let bits: Vec<LogicBit> = (0..width).map(|_| self.bit(defined_only)).collect();
        LogicVec::from_bits(&bits)
    }

    /// A dirty buffer of random shape to exercise in-place storage reuse.
    fn dirty(&mut self) -> LogicVec {
        let w = self.width();
        self.vec(w, false)
    }
}

/// Converts a fully defined vector of width <= 128 to u128.
fn to_u128(v: &LogicVec) -> u128 {
    assert!(v.is_fully_defined() && v.width() <= 128);
    let a = v.avals();
    let lo = a[0] as u128;
    let hi = if a.len() > 1 { a[1] as u128 } else { 0 };
    lo | (hi << 64)
}

/// Builds a vector of `width` bits from the low bits of a u128.
fn from_u128(width: u32, x: u128) -> LogicVec {
    let bits: Vec<LogicBit> = (0..width)
        .map(|i| LogicBit::from((x >> i) & 1 == 1))
        .collect();
    LogicVec::from_bits(&bits)
}

fn mask128(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

/// Per-bit four-state truth tables, written out independently of the
/// word-parallel implementations under test.
fn ref_and(a: LogicBit, b: LogicBit) -> LogicBit {
    match (a, b) {
        (LogicBit::Zero, _) | (_, LogicBit::Zero) => LogicBit::Zero,
        (LogicBit::One, LogicBit::One) => LogicBit::One,
        _ => LogicBit::X,
    }
}

fn ref_or(a: LogicBit, b: LogicBit) -> LogicBit {
    match (a, b) {
        (LogicBit::One, _) | (_, LogicBit::One) => LogicBit::One,
        (LogicBit::Zero, LogicBit::Zero) => LogicBit::Zero,
        _ => LogicBit::X,
    }
}

fn ref_xor(a: LogicBit, b: LogicBit) -> LogicBit {
    match (a.to_bool(), b.to_bool()) {
        (Some(x), Some(y)) => LogicBit::from(x ^ y),
        _ => LogicBit::X,
    }
}

fn ref_not(a: LogicBit) -> LogicBit {
    match a {
        LogicBit::Zero => LogicBit::One,
        LogicBit::One => LogicBit::Zero,
        _ => LogicBit::X,
    }
}

/// Bit-wise binary oracle at the zero-extended common width.
fn bitwise_oracle(l: &LogicVec, r: &LogicVec, f: fn(LogicBit, LogicBit) -> LogicBit) -> LogicVec {
    let w = l.width().max(r.width());
    let ext = |v: &LogicVec, i: u32| {
        if i < v.width() {
            v.bit(i)
        } else {
            LogicBit::Zero
        }
    };
    let bits: Vec<LogicBit> = (0..w).map(|i| f(ext(l, i), ext(r, i))).collect();
    LogicVec::from_bits(&bits)
}

#[test]
fn bitwise_assign_matches_per_bit_oracle_and_pure_form() {
    let mut rng = XorShift::new(0xe5a5e5);
    for _ in 0..CASES {
        let wl_ = rng.width();
        let l = rng.vec(wl_, false);
        let wr_ = rng.width();
        let r = rng.vec(wr_, false);

        type Case = (
            fn(&mut LogicVec, &LogicVec),
            fn(&LogicVec, &LogicVec) -> LogicVec,
            fn(LogicBit, LogicBit) -> LogicBit,
        );
        let cases: [Case; 3] = [
            (LogicVec::and_assign, LogicVec::and, ref_and),
            (LogicVec::or_assign, LogicVec::or, ref_or),
            (LogicVec::xor_assign, LogicVec::xor, ref_xor),
        ];
        for (assign, pure, oracle) in cases {
            let expect = bitwise_oracle(&l, &r, oracle);
            let mut out = rng.dirty();
            out.assign_from(&l);
            assign(&mut out, &r);
            assert_eq!(out, expect, "assign form diverged");
            assert_eq!(pure(&l, &r), expect, "pure form diverged");
        }

        // XNOR = NOT(XOR), NOT per-bit.
        let expect = {
            let x = bitwise_oracle(&l, &r, ref_xor);
            let bits: Vec<LogicBit> = x.iter_bits().map(ref_not).collect();
            LogicVec::from_bits(&bits)
        };
        let mut out = rng.dirty();
        out.assign_from(&l);
        out.xnor_assign(&r);
        assert_eq!(out, expect);
        assert_eq!(l.xnor(&r), expect);

        let expect: Vec<LogicBit> = l.iter_bits().map(ref_not).collect();
        let expect = LogicVec::from_bits(&expect);
        let mut out = rng.dirty();
        out.assign_from(&l);
        out.not_assign();
        assert_eq!(out, expect);
        assert_eq!(l.not(), expect);
    }
}

#[test]
fn arithmetic_assign_matches_u128_oracle() {
    let mut rng = XorShift::new(0xadd1);
    for _ in 0..CASES {
        let (wl, wr) = (rng.width(), rng.width());
        let w = wl.max(wr);
        let l = rng.vec(wl, true);
        let r = rng.vec(wr, true);
        let (a, b) = (to_u128(&l), to_u128(&r));

        let mut out = rng.dirty();
        out.assign_from(&l);
        out.add_assign(&r);
        assert_eq!(out, from_u128(w, a.wrapping_add(b) & mask128(w)));
        assert_eq!(l.add(&r), out);

        let mut out = rng.dirty();
        out.assign_from(&l);
        out.sub_assign(&r);
        assert_eq!(out, from_u128(w, a.wrapping_sub(b) & mask128(w)));
        assert_eq!(l.sub(&r), out);

        let mut out = rng.dirty();
        out.assign_from(&l);
        out.neg_assign();
        assert_eq!(out, from_u128(wl, a.wrapping_neg() & mask128(wl)));
        assert_eq!(l.neg(), out);

        let mut out = rng.dirty();
        l.mul_into(&r, &mut out);
        assert_eq!(out, from_u128(w, a.wrapping_mul(b) & mask128(w)));
        assert_eq!(l.mul(&r), out);

        let mut out = rng.dirty();
        l.div_into(&r, &mut out);
        match a.checked_div(b) {
            None => assert!(out.iter_bits().all(|bit| bit == LogicBit::X)),
            Some(q) => assert_eq!(out, from_u128(w, q & mask128(w))),
        }
        assert_eq!(l.div(&r), out);

        let mut out = rng.dirty();
        l.rem_into(&r, &mut out);
        if b != 0 {
            assert_eq!(out, from_u128(w, (a % b) & mask128(w)));
        }
        assert_eq!(l.rem(&r), out);
    }
}

#[test]
fn arithmetic_assign_is_pessimistic_about_unknowns() {
    let mut rng = XorShift::new(0xdeadd);
    for _ in 0..CASES {
        let wl_ = rng.width();
        let l = rng.vec(wl_, false);
        let wr_ = rng.width();
        let r = rng.vec(wr_, false);
        if !l.has_unknown() && !r.has_unknown() {
            continue;
        }
        let w = l.width().max(r.width());
        let all_x = LogicVec::new_x(w);
        let mut out = rng.dirty();
        out.assign_from(&l);
        out.add_assign(&r);
        assert_eq!(out, all_x);
        let mut out = rng.dirty();
        out.assign_from(&l);
        out.sub_assign(&r);
        assert_eq!(out, all_x);
        let mut out = rng.dirty();
        l.mul_into(&r, &mut out);
        assert_eq!(out, all_x);
    }
}

#[test]
fn shift_assign_matches_u128_oracle_and_pure_form() {
    let mut rng = XorShift::new(0x5417);
    for _ in 0..CASES {
        let w = rng.width();
        let l = rng.vec(w, true);
        let a = to_u128(&l);
        let amount = rng.below(w as u64 + 10) as u32;

        let mut out = rng.dirty();
        out.assign_from(&l);
        out.shl_assign(amount);
        let expect = if amount >= w {
            0
        } else {
            (a << amount) & mask128(w)
        };
        assert_eq!(out, from_u128(w, expect));
        assert_eq!(l.shl(amount), out);

        let mut out = rng.dirty();
        out.assign_from(&l);
        out.lshr_assign(amount);
        let expect = if amount >= w { 0 } else { a >> amount };
        assert_eq!(out, from_u128(w, expect));
        assert_eq!(l.lshr(amount), out);

        let mut out = rng.dirty();
        out.assign_from(&l);
        out.ashr_assign(amount);
        let msb = (a >> (w - 1)) & 1 == 1;
        let expect = if amount >= w {
            if msb {
                mask128(w)
            } else {
                0
            }
        } else {
            let shifted = a >> amount;
            if msb {
                (shifted | (mask128(w) << (w - amount))) & mask128(w)
            } else {
                shifted
            }
        };
        assert_eq!(out, from_u128(w, expect));
        assert_eq!(l.ashr(amount), out);

        // Vector-amount forms: unknown amount means all-X.
        let amt_vec = LogicVec::from_u64(8, amount as u64);
        let mut out = rng.dirty();
        out.assign_from(&l);
        out.shl_vec_assign(&amt_vec);
        assert_eq!(out, l.shl_vec(&amt_vec));
        let mut out = rng.dirty();
        out.assign_from(&l);
        out.lshr_vec_assign(&LogicVec::new_x(4));
        assert_eq!(out, LogicVec::new_x(w));
    }
}

/// A *fully-defined* shift amount that does not fit in `u64` is still a
/// valid (huge) count: it must saturate to "everything shifted out" — zero
/// fill for `<<` / `>>`, sign fill for `>>>` — exactly as a constant amount
/// `>= width` does. Only genuinely unknown (`X`/`Z`) amounts may poison the
/// result to all-`X`.
#[test]
fn wide_defined_shift_amounts_saturate_not_x() {
    let mut rng = XorShift::new(0x5111f7ed);
    for _ in 0..CASES {
        let w = rng.width();
        let l = rng.vec(w, false);
        // A defined amount vector wider than 64 bits with a high word bit
        // set, so to_u64() is None although nothing is unknown.
        let mut amt = LogicVec::zeros(65 + rng.below(64) as u32);
        amt.set_bit(64, LogicBit::One);
        if rng.below(2) == 0 {
            amt.set_bit(rng.below(64) as u32, LogicBit::One);
        }
        assert!(!amt.has_unknown() && amt.to_u64().is_none());

        // Oracle: identical to shifting by the (saturating) width itself.
        let mut out = rng.dirty();
        out.assign_from(&l);
        out.shl_vec_assign(&amt);
        assert_eq!(out, l.shl(w), "shl by wide defined amount");
        assert_eq!(out, LogicVec::zeros(w));
        assert_eq!(l.shl_vec(&amt), out);

        let mut out = rng.dirty();
        out.assign_from(&l);
        out.lshr_vec_assign(&amt);
        assert_eq!(out, l.lshr(w), "lshr by wide defined amount");
        assert_eq!(out, LogicVec::zeros(w));
        assert_eq!(l.lshr_vec(&amt), out);

        let mut out = rng.dirty();
        out.assign_from(&l);
        out.ashr_vec_assign(&amt);
        assert_eq!(out, l.ashr(w), "ashr by wide defined amount");
        // Sign fill: the MSB everywhere (X-fill for an undefined MSB).
        let msb = l.bit(w - 1);
        let fill = if msb.is_defined() { msb } else { LogicBit::X };
        assert_eq!(out, LogicVec::filled(w, fill));
        assert_eq!(l.ashr_vec(&amt), out);
    }
}

/// Unknown amounts — whether the unknown bit sits below or above bit 64 —
/// still produce all-`X` results for every vector-amount shift.
#[test]
fn unknown_shift_amounts_are_all_x_at_any_amount_width() {
    let mut rng = XorShift::new(0xa11f00d);
    for amt_w in [3u32, 64, 65, 128] {
        for _ in 0..40 {
            let w = rng.width();
            let l = rng.vec(w, false);
            let mut amt = LogicVec::zeros(amt_w);
            let pos = rng.below(amt_w as u64) as u32;
            amt.set_bit(
                pos,
                if rng.below(2) == 0 {
                    LogicBit::X
                } else {
                    LogicBit::Z
                },
            );
            for (inplace, pure) in [
                (LogicVec::shl_vec_assign as fn(&mut LogicVec, &LogicVec), {
                    LogicVec::shl_vec as fn(&LogicVec, &LogicVec) -> LogicVec
                }),
                (LogicVec::lshr_vec_assign, LogicVec::lshr_vec),
                (LogicVec::ashr_vec_assign, LogicVec::ashr_vec),
            ] {
                let mut out = rng.dirty();
                out.assign_from(&l);
                inplace(&mut out, &amt);
                assert_eq!(out, LogicVec::new_x(w), "amount width {amt_w}");
                assert_eq!(pure(&l, &amt), out);
            }
        }
    }
}

#[test]
fn comparisons_match_u128_oracle_without_allocating_semantics() {
    let mut rng = XorShift::new(0xc0ffee);
    for _ in 0..CASES {
        let wl_ = rng.width();
        let l = rng.vec(wl_, true);
        let wr_ = rng.width();
        let r = rng.vec(wr_, true);
        let (a, b) = (to_u128(&l), to_u128(&r));
        assert_eq!(l.logic_eq(&r), LogicBit::from(a == b));
        assert_eq!(l.lt(&r), LogicBit::from(a < b));
        assert_eq!(l.le(&r), LogicBit::from(a <= b));
        assert_eq!(l.gt(&r), LogicBit::from(a > b));
        assert_eq!(l.ge(&r), LogicBit::from(a >= b));
        assert_eq!(l.case_eq(&r), a == b);

        // Unknown operands: X for logic compares, exact identity for ===.
        let wx_ = rng.width();
        let x = rng.vec(wx_, false);
        if x.has_unknown() {
            assert_eq!(l.logic_eq(&x), LogicBit::X);
            assert_eq!(l.lt(&x), LogicBit::X);
            assert!(x.case_eq(&x.clone()));
        }
    }
}

#[test]
fn merge_x_assign_matches_per_bit_oracle() {
    let mut rng = XorShift::new(0x3e23e);
    for _ in 0..CASES {
        let wl_ = rng.width();
        let l = rng.vec(wl_, false);
        let wr_ = rng.width();
        let r = rng.vec(wr_, false);
        let w = l.width().max(r.width());
        let ext = |v: &LogicVec, i: u32| {
            if i < v.width() {
                v.bit(i)
            } else {
                LogicBit::Zero
            }
        };
        let bits: Vec<LogicBit> = (0..w)
            .map(|i| {
                let (a, b) = (ext(&l, i), ext(&r, i));
                if a == b && a.is_defined() {
                    a
                } else {
                    LogicBit::X
                }
            })
            .collect();
        let expect = LogicVec::from_bits(&bits);
        let mut out = rng.dirty();
        out.assign_from(&l);
        out.merge_x_assign(&r);
        assert_eq!(out, expect);
        assert_eq!(l.merge_x(&r), expect);
    }
}

#[test]
fn word_parallel_slice_matches_per_bit_oracle() {
    let mut rng = XorShift::new(0x51ce);
    for _ in 0..CASES {
        let wv = rng.width();
        let v = rng.vec(wv, false);
        // hi may exceed the width: out-of-range bits must read X.
        let hi = rng.below(wv as u64 + 70) as u32;
        let lo = rng.below(hi as u64 + 1) as u32;
        let expect: Vec<LogicBit> = (lo..=hi)
            .map(|i| if i < wv { v.bit(i) } else { LogicBit::X })
            .collect();
        let expect = LogicVec::from_bits(&expect);
        let mut out = rng.dirty();
        v.slice_into(hi, lo, &mut out);
        assert_eq!(out, expect, "slice_into({hi},{lo}) of width {wv}");
        assert_eq!(v.slice(hi, lo), expect);
    }
}

#[test]
fn word_parallel_assign_slice_matches_per_bit_oracle() {
    let mut rng = XorShift::new(0xa551);
    for _ in 0..CASES {
        let wt = rng.width();
        let target = rng.vec(wt, false);
        let wv = rng.width();
        let value = rng.vec(wv, false);
        // lo may push part (or all) of the value out of range: those bits
        // are dropped.
        let lo = rng.below(wt as u64 + 10) as u32;
        let expect: Vec<LogicBit> = (0..wt)
            .map(|i| {
                if i >= lo && i - lo < wv {
                    value.bit(i - lo)
                } else {
                    target.bit(i)
                }
            })
            .collect();
        let expect = LogicVec::from_bits(&expect);
        let mut out = target.clone();
        out.assign_slice(lo, &value);
        assert_eq!(out, expect, "assign_slice({lo}) of {wv} bits into {wt}");
    }
}

#[test]
fn storage_management_roundtrips() {
    let mut rng = XorShift::new(0x57012a6e);
    for _ in 0..CASES {
        let wv_ = rng.width();
        let v = rng.vec(wv_, false);

        // assign_from reproduces the source exactly through any prior shape.
        let mut out = rng.dirty();
        out.assign_from(&v);
        assert_eq!(out, v);

        // copy_resized == resize.
        let new_w = rng.width();
        let mut out = rng.dirty();
        out.copy_resized(&v, new_w);
        assert_eq!(out, v.resize(new_w));

        // resize_assign == resize, in place.
        let mut out = v.clone();
        out.resize_assign(new_w);
        assert_eq!(out, v.resize(new_w));

        // into_width on equal width is identity.
        assert_eq!(v.clone().into_width(v.width()), v);

        // slice_into == slice through a dirty buffer.
        let hi = rng.below(v.width() as u64 + 8) as u32;
        let lo = rng.below(hi as u64 + 1) as u32;
        let mut out = rng.dirty();
        v.slice_into(hi, lo, &mut out);
        assert_eq!(out, v.slice(hi, lo));

        // assign_bit / assign_u64 / make_filled match their constructors.
        let bit = rng.bit(false);
        let mut out = rng.dirty();
        out.assign_bit(bit);
        assert_eq!(out, LogicVec::from_bit(bit));
        let w = rng.width().min(64);
        let raw = rng.next_u64();
        let mut out = rng.dirty();
        out.assign_u64(w, raw);
        assert_eq!(out, LogicVec::from_u64(w, raw));
        let w = rng.width();
        let mut out = rng.dirty();
        out.make_filled(w, bit);
        assert_eq!(out, LogicVec::filled(w, bit));
    }
}
