//! Arbitrary-width four-state bit vectors.

use crate::LogicBit;

/// Number of 64-bit words needed for `width` bits.
#[inline]
pub(crate) fn words_for(width: u32) -> usize {
    (width as usize).div_ceil(64)
}

/// Mask for the valid bits of the top word of a `width`-bit vector.
#[inline]
pub(crate) fn top_word_mask(width: u32) -> u64 {
    let rem = width % 64;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// Backing storage: one inline word pair for widths up to 64 bits, a boxed
/// slice (`aval` words followed by `bval` words) beyond that.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Buf {
    Inline { aval: u64, bval: u64 },
    Heap(Box<[u64]>),
}

/// An arbitrary-width vector of four-state logic bits.
///
/// Bit 0 is the least significant bit. All operations keep the invariant
/// that bits at positions `>= width` are `0` in both planes, so structural
/// equality (`==`) is exact four-state value equality (the Verilog `===`
/// operator is [`LogicVec::case_eq`], which is the same thing; the four-state
/// `==` operator is [`LogicVec::logic_eq`]).
///
/// # Example
///
/// ```
/// use eraser_logic::LogicVec;
///
/// let a = LogicVec::from_u64(16, 1234);
/// let b = LogicVec::from_u64(16, 4321);
/// assert_eq!(a.add(&b).to_u64(), Some(5555));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LogicVec {
    width: u32,
    buf: Buf,
}

impl LogicVec {
    /// Creates a vector of the given width with every bit `X`.
    ///
    /// This is the reset value of registers and undriven variables, matching
    /// event-driven simulator semantics.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new_x(width: u32) -> Self {
        Self::filled(width, LogicBit::X)
    }

    /// Creates a vector of the given width with every bit `0`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn zeros(width: u32) -> Self {
        Self::filled(width, LogicBit::Zero)
    }

    /// Creates a vector of the given width with every bit `1`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn ones(width: u32) -> Self {
        Self::filled(width, LogicBit::One)
    }

    /// Creates a vector with every bit set to `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn filled(width: u32, bit: LogicBit) -> Self {
        assert!(width > 0, "LogicVec width must be positive");
        let (a, b) = bit.planes();
        let aw = if a { u64::MAX } else { 0 };
        let bw = if b { u64::MAX } else { 0 };
        Self::from_fn(width, |aval, bval| {
            aval.fill(aw);
            bval.fill(bw);
        })
    }

    /// Creates a vector from the low `width` bits of a `u64`.
    ///
    /// Bits of `value` above `width` are ignored; bits of the vector above
    /// bit 63 (for `width > 64`) are zero.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn from_u64(width: u32, value: u64) -> Self {
        assert!(width > 0, "LogicVec width must be positive");
        Self::from_fn(width, |aval, _bval| {
            aval[0] = value;
        })
    }

    /// Creates a 1-bit vector from a [`LogicBit`].
    pub fn from_bit(bit: LogicBit) -> Self {
        Self::filled(1, bit)
    }

    /// Creates a vector from bits given LSB-first.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn from_bits(bits: &[LogicBit]) -> Self {
        assert!(!bits.is_empty(), "LogicVec must have at least one bit");
        let mut v = Self::zeros(bits.len() as u32);
        for (i, &b) in bits.iter().enumerate() {
            v.set_bit(i as u32, b);
        }
        v
    }

    /// Builds a vector by letting `f` fill zeroed `aval`/`bval` planes, then
    /// normalizes bits above `width`.
    pub(crate) fn from_fn(width: u32, f: impl FnOnce(&mut [u64], &mut [u64])) -> Self {
        assert!(width > 0, "LogicVec width must be positive");
        let n = words_for(width);
        let mut v = if n == 1 {
            let mut aval = [0u64];
            let mut bval = [0u64];
            f(&mut aval, &mut bval);
            LogicVec {
                width,
                buf: Buf::Inline {
                    aval: aval[0],
                    bval: bval[0],
                },
            }
        } else {
            let mut words = vec![0u64; 2 * n].into_boxed_slice();
            let (aval, bval) = words.split_at_mut(n);
            f(aval, bval);
            LogicVec {
                width,
                buf: Buf::Heap(words),
            }
        };
        v.normalize();
        v
    }

    // ---- in-place storage management (the zero-allocation hot path) ----
    //
    // These methods reshape an existing vector without touching the
    // allocator whenever the backing storage already fits: widths up to 64
    // bits are always inline, and wider vectors reuse their boxed words
    // when the word count is unchanged. They are the foundation of the
    // `*_assign` operator variants in `ops.rs` and of the scratch-arena
    // expression evaluator in `eraser-ir`.

    /// Reshapes `self` into an all-zero vector of `width` bits, reusing the
    /// existing storage when possible.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn make_zeros(&mut self, width: u32) {
        assert!(width > 0, "LogicVec width must be positive");
        let n = words_for(width);
        if n == 1 {
            self.buf = Buf::Inline { aval: 0, bval: 0 };
        } else {
            match &mut self.buf {
                Buf::Heap(words) if words.len() == 2 * n => words.fill(0),
                _ => self.buf = Buf::Heap(vec![0u64; 2 * n].into_boxed_slice()),
            }
        }
        self.width = width;
    }

    /// Reshapes `self` into a vector of `width` bits all set to `bit`,
    /// reusing the existing storage when possible.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn make_filled(&mut self, width: u32, bit: LogicBit) {
        self.make_zeros(width);
        let (a, b) = bit.planes();
        let aw = if a { u64::MAX } else { 0 };
        let bw = if b { u64::MAX } else { 0 };
        let (av, bv) = self.planes_mut();
        av.fill(aw);
        bv.fill(bw);
        self.normalize();
    }

    /// Reshapes `self` into `width` bits of `X`, reusing storage. The
    /// in-place counterpart of [`LogicVec::new_x`].
    pub fn make_x(&mut self, width: u32) {
        self.make_filled(width, LogicBit::X);
    }

    /// Makes `self` an exact copy of `src`, reusing storage when possible.
    ///
    /// The in-place counterpart of `clone_from` that never allocates for
    /// widths up to 64 bits, nor when the word counts already match.
    #[inline]
    pub fn assign_from(&mut self, src: &LogicVec) {
        // Inline source: as cheap as the pre-change register-copy clone.
        if let Buf::Inline { aval, bval } = src.buf {
            self.width = src.width;
            self.buf = Buf::Inline { aval, bval };
            return;
        }
        self.copy_resized(src, src.width());
    }

    /// Makes `self` the value of `src` zero-extended or truncated to
    /// `new_width` — the in-place counterpart of [`LogicVec::resize`].
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is zero.
    pub fn copy_resized(&mut self, src: &LogicVec, new_width: u32) {
        assert!(new_width > 0, "LogicVec width must be positive");
        if new_width <= 64 {
            let mask = top_word_mask(new_width);
            self.width = new_width;
            self.buf = Buf::Inline {
                aval: src.avals()[0] & mask,
                bval: src.bvals()[0] & mask,
            };
            return;
        }
        self.make_zeros(new_width);
        let (sa, sb) = (src.avals(), src.bvals());
        let (a, b) = self.planes_mut();
        for (i, w) in a.iter_mut().enumerate() {
            *w = sa.get(i).copied().unwrap_or(0);
        }
        for (i, w) in b.iter_mut().enumerate() {
            *w = sb.get(i).copied().unwrap_or(0);
        }
        self.normalize();
    }

    /// Zero-extends or truncates `self` to `new_width` in place. A no-op on
    /// equal width; allocation-free unless the word count changes.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is zero.
    pub fn resize_assign(&mut self, new_width: u32) {
        assert!(new_width > 0, "LogicVec width must be positive");
        if new_width == self.width {
            return;
        }
        if words_for(new_width) == words_for(self.width) {
            self.width = new_width;
            self.normalize();
        } else {
            *self = self.resize(new_width);
        }
    }

    /// Makes `self` a 1-bit vector holding `bit`, without allocating.
    pub fn assign_bit(&mut self, bit: LogicBit) {
        let (a, b) = bit.planes();
        self.width = 1;
        self.buf = Buf::Inline {
            aval: a as u64,
            bval: b as u64,
        };
    }

    /// Makes `self` the low `width` bits of `value` — the in-place
    /// counterpart of [`LogicVec::from_u64`].
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn assign_u64(&mut self, width: u32, value: u64) {
        self.make_zeros(width);
        self.planes_mut().0[0] = value;
        self.normalize();
    }

    /// Consumes `self`, returning it resized to `new_width`. A true no-op
    /// (no clone, no allocation) when the width already matches — use this
    /// instead of [`LogicVec::resize`] when the value is owned.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is zero.
    pub fn into_width(mut self, new_width: u32) -> Self {
        self.resize_assign(new_width);
        self
    }

    /// The least-significant word of each plane as `(aval, bval)`.
    ///
    /// For vectors up to 64 bits wide this is the complete value (both
    /// planes are normalized, so bits at positions `>= width` are zero) —
    /// the read half of the single-word fast paths used by compiled
    /// evaluation tapes. Wider vectors return only their low word.
    #[inline]
    pub fn word_planes(&self) -> (u64, u64) {
        match &self.buf {
            Buf::Inline { aval, bval } => (*aval, *bval),
            Buf::Heap(words) => (words[0], words[words.len() / 2]),
        }
    }

    /// Makes `self` a `width`-bit vector (`width <= 64`) with the given
    /// plane words, masking bits at positions `>= width`. Never allocates —
    /// the write half of the single-word fast paths.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    #[inline]
    pub fn assign_word(&mut self, width: u32, aval: u64, bval: u64) {
        assert!(
            width > 0 && width <= 64,
            "assign_word width must be in 1..=64, got {width}"
        );
        let m = top_word_mask(width);
        self.set_inline(width, aval & m, bval & m);
    }

    /// The two planes as plain words when the value is inline (width <=
    /// 64), for branch-light fast paths in the operators.
    #[inline]
    pub(crate) fn inline_parts(&self) -> Option<(u64, u64)> {
        match self.buf {
            Buf::Inline { aval, bval } => Some((aval, bval)),
            _ => None,
        }
    }

    /// Replaces the value with inline planes (caller masks to `width`).
    #[inline]
    pub(crate) fn set_inline(&mut self, width: u32, aval: u64, bval: u64) {
        self.width = width;
        self.buf = Buf::Inline { aval, bval };
    }

    /// Mutable access to both planes (`aval`, `bval`), LSB word first.
    /// Callers must re-[`normalize`](Self::normalize) if they may set bits
    /// at positions `>= width`.
    #[inline]
    pub(crate) fn planes_mut(&mut self) -> (&mut [u64], &mut [u64]) {
        match &mut self.buf {
            Buf::Inline { aval, bval } => (std::slice::from_mut(aval), std::slice::from_mut(bval)),
            Buf::Heap(words) => {
                let n = words.len() / 2;
                words.split_at_mut(n)
            }
        }
    }

    /// Masks off bits above `width` in both planes.
    pub(crate) fn normalize(&mut self) {
        let mask = top_word_mask(self.width);
        match &mut self.buf {
            Buf::Inline { aval, bval } => {
                *aval &= mask;
                *bval &= mask;
            }
            Buf::Heap(words) => {
                let n = words.len() / 2;
                words[n - 1] &= mask;
                words[2 * n - 1] &= mask;
            }
        }
    }

    /// The width in bits. Always at least 1.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The `aval` plane words (LSB word first).
    #[inline]
    pub fn avals(&self) -> &[u64] {
        match &self.buf {
            Buf::Inline { aval, .. } => std::slice::from_ref(aval),
            Buf::Heap(words) => &words[..words.len() / 2],
        }
    }

    /// The `bval` plane words (LSB word first).
    #[inline]
    pub fn bvals(&self) -> &[u64] {
        match &self.buf {
            Buf::Inline { bval, .. } => std::slice::from_ref(bval),
            Buf::Heap(words) => &words[words.len() / 2..],
        }
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`. Use [`LogicVec::bit_or_x`] for dynamic
    /// (possibly out-of-range) indices.
    #[inline]
    pub fn bit(&self, i: u32) -> LogicBit {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        let w = (i / 64) as usize;
        let m = 1u64 << (i % 64);
        LogicBit::from_planes(self.avals()[w] & m != 0, self.bvals()[w] & m != 0)
    }

    /// Reads bit `i`, returning `X` if `i` is out of range — the Verilog
    /// semantics of an out-of-bounds bit select.
    #[inline]
    pub fn bit_or_x(&self, i: u32) -> LogicBit {
        if i < self.width {
            self.bit(i)
        } else {
            LogicBit::X
        }
    }

    /// Sets bit `i` to `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set_bit(&mut self, i: u32, bit: LogicBit) {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        let w = (i / 64) as usize;
        let m = 1u64 << (i % 64);
        let (a, b) = bit.planes();
        let n = words_for(self.width);
        match &mut self.buf {
            Buf::Inline { aval, bval } => {
                if a {
                    *aval |= m
                } else {
                    *aval &= !m
                }
                if b {
                    *bval |= m
                } else {
                    *bval &= !m
                }
            }
            Buf::Heap(words) => {
                if a {
                    words[w] |= m
                } else {
                    words[w] &= !m
                }
                if b {
                    words[n + w] |= m
                } else {
                    words[n + w] &= !m
                }
            }
        }
    }

    /// True if no bit is `X` or `Z`.
    #[inline]
    pub fn is_fully_defined(&self) -> bool {
        self.bvals().iter().all(|&w| w == 0)
    }

    /// True if any bit is `X` or `Z`.
    #[inline]
    pub fn has_unknown(&self) -> bool {
        !self.is_fully_defined()
    }

    /// True if the value is fully defined and every bit is `0`.
    pub fn is_zero(&self) -> bool {
        self.is_fully_defined() && self.avals().iter().all(|&w| w == 0)
    }

    /// Converts to `u64` if fully defined and the value fits in 64 bits.
    pub fn to_u64(&self) -> Option<u64> {
        if !self.is_fully_defined() {
            return None;
        }
        let avals = self.avals();
        if avals[1..].iter().any(|&w| w != 0) {
            return None;
        }
        Some(avals[0])
    }

    /// Iterates over the bits, LSB first.
    pub fn iter_bits(&self) -> impl Iterator<Item = LogicBit> + '_ {
        (0..self.width).map(|i| self.bit(i))
    }

    /// Zero-extends or truncates to `new_width`.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is zero.
    pub fn resize(&self, new_width: u32) -> Self {
        if new_width == self.width {
            return self.clone();
        }
        let (sa, sb) = (self.avals(), self.bvals());
        Self::from_fn(new_width, |aval, bval| {
            for (i, w) in aval.iter_mut().enumerate() {
                *w = sa.get(i).copied().unwrap_or(0);
            }
            for (i, w) in bval.iter_mut().enumerate() {
                *w = sb.get(i).copied().unwrap_or(0);
            }
        })
    }

    /// Sign-extends (replicating the MSB, including `X`/`Z` MSBs) or
    /// truncates to `new_width`.
    ///
    /// # Panics
    ///
    /// Panics if `new_width` is zero.
    pub fn sign_extend(&self, new_width: u32) -> Self {
        if new_width <= self.width {
            return self.resize(new_width);
        }
        let msb = self.bit(self.width - 1);
        let mut v = self.resize(new_width);
        for i in self.width..new_width {
            v.set_bit(i, msb);
        }
        v
    }

    /// Extracts bits `hi..=lo` (inclusive, `hi >= lo`) as a new vector of
    /// width `hi - lo + 1`.
    ///
    /// Bits beyond the source width read as `X` (out-of-range part select).
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo`.
    pub fn slice(&self, hi: u32, lo: u32) -> Self {
        let mut out = Self::zeros(1);
        self.slice_into(hi, lo, &mut out);
        out
    }

    /// In-place variant of [`LogicVec::slice`]: writes bits `hi..=lo` of
    /// `self` into `out`, which is reshaped to width `hi - lo + 1`.
    /// Word-parallel and allocation-free (up to the usual word-count caveat
    /// on `out`).
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo`.
    pub fn slice_into(&self, hi: u32, lo: u32, out: &mut LogicVec) {
        assert!(hi >= lo, "slice hi ({hi}) must be >= lo ({lo})");
        let out_w = hi - lo + 1;
        // Inline fast path: shift, X-fill the out-of-range tail, mask.
        if out_w <= 64 {
            if let Some((a, b)) = self.inline_parts() {
                let (mut oa, mut ob) = if lo < 64 { (a >> lo, b >> lo) } else { (0, 0) };
                if hi >= self.width {
                    let from = self.width.saturating_sub(lo);
                    let xm = if from >= 64 { 0 } else { !((1u64 << from) - 1) };
                    oa |= xm;
                    ob |= xm;
                }
                let m = top_word_mask(out_w);
                out.set_inline(out_w, oa & m, ob & m);
                return;
            }
        }
        out.make_zeros(out_w);
        let ws = (lo / 64) as usize;
        let bs = lo % 64;
        let gather = |src: &[u64], i: usize| -> u64 {
            let low = src.get(i + ws).copied().unwrap_or(0) >> bs;
            let high = if bs > 0 {
                src.get(i + ws + 1).copied().unwrap_or(0) << (64 - bs)
            } else {
                0
            };
            low | high
        };
        let (sa, sb) = (self.avals(), self.bvals());
        {
            let (oa, ob) = out.planes_mut();
            for i in 0..oa.len() {
                oa[i] = gather(sa, i);
                ob[i] = gather(sb, i);
            }
        }
        // Bits beyond the source width read as X (out-of-range part
        // select): force X from the first out-of-range output bit on.
        if hi >= self.width {
            let from = self.width.saturating_sub(lo);
            let (oa, ob) = out.planes_mut();
            let start = (from / 64) as usize;
            for i in start..oa.len() {
                let m = if i == start {
                    !((1u64 << (from % 64)) - 1)
                } else {
                    u64::MAX
                };
                oa[i] |= m;
                ob[i] |= m;
            }
        }
        out.normalize();
    }

    /// Writes `value` into bits `lo..lo + value.width()`.
    ///
    /// Bits of `value` that would land above `self.width()` are dropped —
    /// the Verilog semantics of an out-of-range part-select store.
    /// Word-parallel; never allocates.
    pub fn assign_slice(&mut self, lo: u32, value: &LogicVec) {
        if lo >= self.width {
            return;
        }
        let n_bits = value.width().min(self.width - lo);
        // Inline fast path: one mask-and-merge.
        if let (Some((ta, tb)), Some((va, vb))) = (self.inline_parts(), value.inline_parts()) {
            let mask = (if n_bits == 64 {
                u64::MAX
            } else {
                (1u64 << n_bits) - 1
            }) << lo;
            self.set_inline(
                self.width,
                (ta & !mask) | ((va << lo) & mask),
                (tb & !mask) | ((vb << lo) & mask),
            );
            return;
        }
        let (va, vb) = (value.avals(), value.bvals());
        // 64 bits of a plane starting at `bit` (zero-padded past the end).
        let window = |src: &[u64], bit: u32| -> u64 {
            let wi = (bit / 64) as usize;
            let sh = bit % 64;
            let low = src.get(wi).copied().unwrap_or(0) >> sh;
            let high = if sh > 0 {
                src.get(wi + 1).copied().unwrap_or(0) << (64 - sh)
            } else {
                0
            };
            low | high
        };
        let (a, b) = self.planes_mut();
        let mut written = 0u32;
        while written < n_bits {
            let dst_bit = lo + written;
            let di = (dst_bit / 64) as usize;
            let off = dst_bit % 64;
            let take = (64 - off).min(n_bits - written);
            let mask = if take == 64 {
                u64::MAX
            } else {
                ((1u64 << take) - 1) << off
            };
            let sa = window(va, written);
            let sb = window(vb, written);
            a[di] = (a[di] & !mask) | ((sa << off) & mask);
            b[di] = (b[di] & !mask) | ((sb << off) & mask);
            written += take;
        }
    }

    /// Concatenates `parts`, given LSB-part first.
    ///
    /// Note the argument order is the *reverse* of Verilog source syntax:
    /// `{a, b}` in Verilog places `a` at the MSBs, so it corresponds to
    /// `LogicVec::concat_lsb_first(&[&b, &a])`.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn concat_lsb_first(parts: &[&LogicVec]) -> Self {
        assert!(!parts.is_empty(), "concat needs at least one part");
        let total: u32 = parts.iter().map(|p| p.width()).sum();
        let mut out = Self::zeros(total);
        let mut lo = 0;
        for p in parts {
            out.assign_slice(lo, p);
            lo += p.width();
        }
        out
    }

    /// Repeats this vector `n` times: Verilog `{n{v}}`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn replicate(&self, n: u32) -> Self {
        assert!(n > 0, "replication count must be positive");
        let mut out = Self::zeros(self.width * n);
        for k in 0..n {
            out.assign_slice(k * self.width, self);
        }
        out
    }
}

impl Default for LogicVec {
    /// A single `X` bit.
    fn default() -> Self {
        LogicVec::new_x(1)
    }
}

impl From<LogicBit> for LogicVec {
    fn from(bit: LogicBit) -> Self {
        LogicVec::from_bit(bit)
    }
}

impl From<bool> for LogicVec {
    fn from(b: bool) -> Self {
        LogicVec::from_bit(LogicBit::from(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_u64_roundtrip() {
        let v = LogicVec::from_u64(32, 0xdead_beef);
        assert_eq!(v.to_u64(), Some(0xdead_beef));
        assert_eq!(v.width(), 32);
    }

    #[test]
    fn from_u64_truncates() {
        let v = LogicVec::from_u64(8, 0x1ff);
        assert_eq!(v.to_u64(), Some(0xff));
    }

    #[test]
    fn wide_vector_words() {
        let v = LogicVec::from_u64(256, 42);
        assert_eq!(v.avals().len(), 4);
        assert_eq!(v.to_u64(), Some(42));
        assert!(v.is_fully_defined());
    }

    #[test]
    fn new_x_is_unknown() {
        let v = LogicVec::new_x(65);
        assert!(v.has_unknown());
        assert_eq!(v.to_u64(), None);
        for i in 0..65 {
            assert_eq!(v.bit(i), LogicBit::X);
        }
    }

    #[test]
    fn set_and_get_bits() {
        let mut v = LogicVec::zeros(100);
        v.set_bit(0, LogicBit::One);
        v.set_bit(63, LogicBit::X);
        v.set_bit(64, LogicBit::Z);
        v.set_bit(99, LogicBit::One);
        assert_eq!(v.bit(0), LogicBit::One);
        assert_eq!(v.bit(63), LogicBit::X);
        assert_eq!(v.bit(64), LogicBit::Z);
        assert_eq!(v.bit(99), LogicBit::One);
        assert_eq!(v.bit(50), LogicBit::Zero);
    }

    #[test]
    fn bit_or_x_out_of_range() {
        let v = LogicVec::zeros(4);
        assert_eq!(v.bit_or_x(3), LogicBit::Zero);
        assert_eq!(v.bit_or_x(4), LogicBit::X);
    }

    #[test]
    fn resize_zero_extends() {
        let v = LogicVec::from_u64(8, 0xab);
        assert_eq!(v.resize(16).to_u64(), Some(0xab));
        assert_eq!(v.resize(4).to_u64(), Some(0xb));
        assert_eq!(v.resize(128).to_u64(), Some(0xab));
    }

    #[test]
    fn sign_extend_replicates_msb() {
        let v = LogicVec::from_u64(4, 0b1010);
        assert_eq!(v.sign_extend(8).to_u64(), Some(0b1111_1010));
        let v = LogicVec::from_u64(4, 0b0010);
        assert_eq!(v.sign_extend(8).to_u64(), Some(0b0000_0010));
        let mut x = LogicVec::from_u64(2, 0b01);
        x.set_bit(1, LogicBit::X);
        let e = x.sign_extend(4);
        assert_eq!(e.bit(3), LogicBit::X);
        assert_eq!(e.bit(0), LogicBit::One);
    }

    #[test]
    fn slice_and_assign_slice() {
        let v = LogicVec::from_u64(16, 0xabcd);
        assert_eq!(v.slice(7, 4).to_u64(), Some(0xc));
        assert_eq!(v.slice(15, 8).to_u64(), Some(0xab));
        let mut w = LogicVec::zeros(16);
        w.assign_slice(4, &LogicVec::from_u64(4, 0xf));
        assert_eq!(w.to_u64(), Some(0x00f0));
    }

    #[test]
    fn slice_out_of_range_reads_x() {
        let v = LogicVec::from_u64(4, 0xf);
        let s = v.slice(5, 2);
        assert_eq!(s.bit(0), LogicBit::One);
        assert_eq!(s.bit(1), LogicBit::One);
        assert_eq!(s.bit(2), LogicBit::X);
        assert_eq!(s.bit(3), LogicBit::X);
    }

    #[test]
    fn concat_lsb_first_order() {
        // Verilog {a, b} with a = 4'hA, b = 4'h5  =>  8'hA5.
        let a = LogicVec::from_u64(4, 0xa);
        let b = LogicVec::from_u64(4, 0x5);
        let c = LogicVec::concat_lsb_first(&[&b, &a]);
        assert_eq!(c.to_u64(), Some(0xa5));
        assert_eq!(c.width(), 8);
    }

    #[test]
    fn replicate_repeats() {
        let v = LogicVec::from_u64(4, 0x9);
        assert_eq!(v.replicate(3).to_u64(), Some(0x999));
    }

    #[test]
    fn equality_is_four_state() {
        let mut a = LogicVec::zeros(4);
        let mut b = LogicVec::zeros(4);
        a.set_bit(2, LogicBit::X);
        assert_ne!(a, b);
        b.set_bit(2, LogicBit::X);
        assert_eq!(a, b);
        b.set_bit(2, LogicBit::Z);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        LogicVec::zeros(0);
    }
}
