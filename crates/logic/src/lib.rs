//! Four-state logic values for RTL simulation.
//!
//! This crate provides the value system used by the ERASER RTL fault
//! simulation framework: arbitrary-width bit vectors where every bit is one
//! of `0`, `1`, `Z` (high impedance) or `X` (unknown), mirroring the IEEE
//! 1364 value set used by event-driven Verilog simulators.
//!
//! The two central types are:
//!
//! * [`LogicBit`] — a single four-state bit.
//! * [`LogicVec`] — an arbitrary-width vector of four-state bits with the
//!   full RTL operator set (bitwise, arithmetic, shifts, comparisons,
//!   reductions, concatenation, part selects).
//!
//! # Encoding
//!
//! Values are stored VPI-style in two bit planes per 64-bit word: an `aval`
//! plane and a `bval` plane. For a bit position, `(aval, bval)` encodes:
//!
//! | aval | bval | value |
//! |------|------|-------|
//! | 0    | 0    | `0`   |
//! | 1    | 0    | `1`   |
//! | 0    | 1    | `Z`   |
//! | 1    | 1    | `X`   |
//!
//! Bits at positions `>= width` are always `(0, 0)` — every operation
//! re-normalizes its result, so plane-equality is value-equality.
//!
//! # X-propagation
//!
//! Bitwise operators use the standard per-bit truth tables (`0 & X = 0`,
//! `1 | X = 1`, otherwise unknown in = unknown out; `Z` behaves as `X` when
//! read by an operator). Arithmetic operators are pessimistic: any `X`/`Z`
//! bit in an operand makes the whole result `X`, as in mainstream RTL
//! simulators.
//!
//! # Example
//!
//! ```
//! use eraser_logic::{LogicVec, LogicBit};
//!
//! let a = LogicVec::from_u64(8, 0x0f);
//! let b = LogicVec::parse_literal("8'b0000_10x0").unwrap();
//! let anded = a.and(&b);
//! assert_eq!(anded.bit(1), LogicBit::X);  // 1 & x = x
//! assert_eq!(anded.bit(3), LogicBit::One);
//! assert_eq!(anded.bit(4), LogicBit::Zero); // 0 & 1 = 0
//! ```

mod bit;
#[cfg(feature = "alloc-count")]
pub mod counting_alloc;
mod fmt;
mod ops;
mod parse;
mod plane;
mod vec;

pub use bit::LogicBit;
pub use parse::ParseLiteralError;
pub use plane::{LanePlanes, LANES};
pub use vec::LogicVec;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<LogicVec>();
        assert_sync::<LogicVec>();
        assert_send::<LogicBit>();
        assert_sync::<LogicBit>();
    }
}
