//! The RTL operator set on [`LogicVec`].
//!
//! All binary operations self-extend both operands to the wider of the two
//! widths (zero-extension), evaluate, and produce a result of that width —
//! the simplified width model documented in the frontend. Comparison and
//! reduction operators produce a [`LogicBit`].
//!
//! Arithmetic is unsigned and pessimistic about unknowns: any `X`/`Z` bit in
//! any operand yields an all-`X` result, as in mainstream event-driven
//! simulators.

use crate::vec::{top_word_mask, words_for};
use crate::{LogicBit, LogicVec};

impl LogicVec {
    /// Evaluates both operands at their common (max) width and combines the
    /// planes word-by-word.
    fn bitwise(&self, rhs: &LogicVec, f: impl Fn(u64, u64, u64, u64) -> (u64, u64)) -> LogicVec {
        let w = self.width().max(rhs.width());
        let l = self.resize(w);
        let r = rhs.resize(w);
        LogicVec::from_fn(w, |aval, bval| {
            for i in 0..aval.len() {
                let (a, b) = f(l.avals()[i], l.bvals()[i], r.avals()[i], r.bvals()[i]);
                aval[i] = a;
                bval[i] = b;
            }
        })
    }

    /// Bitwise four-state AND.
    pub fn and(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise(rhs, |la, lb, ra, rb| {
            let def0 = (!la & !lb) | (!ra & !rb);
            let x = (lb | rb) & !def0;
            let one = (la & !lb) & (ra & !rb);
            (one | x, x)
        })
    }

    /// Bitwise four-state OR.
    pub fn or(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise(rhs, |la, lb, ra, rb| {
            let one = (la & !lb) | (ra & !rb);
            let x = (lb | rb) & !one;
            (one | x, x)
        })
    }

    /// Bitwise four-state XOR.
    pub fn xor(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise(rhs, |la, lb, ra, rb| {
            let x = lb | rb;
            (((la ^ ra) & !x) | x, x)
        })
    }

    /// Bitwise four-state XNOR.
    pub fn xnor(&self, rhs: &LogicVec) -> LogicVec {
        self.bitwise(rhs, |la, lb, ra, rb| {
            let x = lb | rb;
            ((!(la ^ ra) & !x) | x, x)
        })
    }

    /// Bitwise four-state NOT.
    pub fn not(&self) -> LogicVec {
        LogicVec::from_fn(self.width(), |aval, bval| {
            for i in 0..aval.len() {
                let (a, b) = (self.avals()[i], self.bvals()[i]);
                aval[i] = (!a & !b) | b;
                bval[i] = b;
            }
        })
    }

    /// Addition modulo `2^w` where `w = max(widths)`; all-`X` on unknowns.
    pub fn add(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.width().max(rhs.width());
        if self.has_unknown() || rhs.has_unknown() {
            return LogicVec::new_x(w);
        }
        let l = self.resize(w);
        let r = rhs.resize(w);
        LogicVec::from_fn(w, |aval, _| {
            let mut carry = 0u64;
            for (i, slot) in aval.iter_mut().enumerate() {
                let (s1, c1) = l.avals()[i].overflowing_add(r.avals()[i]);
                let (s2, c2) = s1.overflowing_add(carry);
                *slot = s2;
                carry = (c1 as u64) + (c2 as u64);
            }
        })
    }

    /// Subtraction modulo `2^w`; all-`X` on unknowns.
    pub fn sub(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.width().max(rhs.width());
        if self.has_unknown() || rhs.has_unknown() {
            return LogicVec::new_x(w);
        }
        let l = self.resize(w);
        let r = rhs.resize(w);
        LogicVec::from_fn(w, |aval, _| {
            let mut borrow = 0u64;
            for (i, slot) in aval.iter_mut().enumerate() {
                let (d1, b1) = l.avals()[i].overflowing_sub(r.avals()[i]);
                let (d2, b2) = d1.overflowing_sub(borrow);
                *slot = d2;
                borrow = (b1 as u64) + (b2 as u64);
            }
        })
    }

    /// Two's-complement negation; all-`X` on unknowns.
    pub fn neg(&self) -> LogicVec {
        LogicVec::zeros(self.width()).sub(self)
    }

    /// Multiplication modulo `2^w`; all-`X` on unknowns.
    pub fn mul(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.width().max(rhs.width());
        if self.has_unknown() || rhs.has_unknown() {
            return LogicVec::new_x(w);
        }
        let l = self.resize(w);
        let r = rhs.resize(w);
        let n = words_for(w);
        LogicVec::from_fn(w, |aval, _| {
            for i in 0..n {
                let mut carry = 0u128;
                for j in 0..(n - i) {
                    let p =
                        l.avals()[i] as u128 * r.avals()[j] as u128 + aval[i + j] as u128 + carry;
                    aval[i + j] = p as u64;
                    carry = p >> 64;
                }
            }
        })
    }

    /// Unsigned division; all-`X` on unknowns or a zero divisor.
    pub fn div(&self, rhs: &LogicVec) -> LogicVec {
        self.div_rem(rhs).0
    }

    /// Unsigned remainder; all-`X` on unknowns or a zero divisor.
    pub fn rem(&self, rhs: &LogicVec) -> LogicVec {
        self.div_rem(rhs).1
    }

    /// Unsigned division and remainder together.
    ///
    /// Returns `(all-X, all-X)` if either operand has unknown bits or the
    /// divisor is zero.
    pub fn div_rem(&self, rhs: &LogicVec) -> (LogicVec, LogicVec) {
        let w = self.width().max(rhs.width());
        if self.has_unknown() || rhs.has_unknown() || rhs.is_zero() {
            return (LogicVec::new_x(w), LogicVec::new_x(w));
        }
        if w <= 64 {
            let a = self.to_u64().expect("defined <=64-bit value");
            let b = rhs.to_u64().expect("defined <=64-bit value");
            return (LogicVec::from_u64(w, a / b), LogicVec::from_u64(w, a % b));
        }
        // Bit-serial restoring division for wide values.
        let l = self.resize(w);
        let r = rhs.resize(w);
        let n = words_for(w);
        let mut quot = vec![0u64; n];
        let mut remw = vec![0u64; n];
        for i in (0..w).rev() {
            // remw = remw << 1 | dividend[i]
            let mut carry = (l.avals()[(i / 64) as usize] >> (i % 64)) & 1;
            for word in remw.iter_mut() {
                let top = *word >> 63;
                *word = (*word << 1) | carry;
                carry = top;
            }
            if ge_words(&remw, r.avals()) {
                sub_words_in_place(&mut remw, r.avals());
                quot[(i / 64) as usize] |= 1u64 << (i % 64);
            }
        }
        let q = LogicVec::from_fn(w, |aval, _| aval.copy_from_slice(&quot));
        let rm = LogicVec::from_fn(w, |aval, _| aval.copy_from_slice(&remw));
        (q, rm)
    }

    /// Logical left shift by a constant amount (zero fill).
    pub fn shl(&self, amount: u32) -> LogicVec {
        let w = self.width();
        if amount >= w {
            return LogicVec::zeros(w);
        }
        shift_words(w, self, amount, ShiftKind::Left)
    }

    /// Logical right shift by a constant amount (zero fill).
    pub fn lshr(&self, amount: u32) -> LogicVec {
        let w = self.width();
        if amount >= w {
            return LogicVec::zeros(w);
        }
        shift_words(w, self, amount, ShiftKind::Right)
    }

    /// Arithmetic right shift by a constant amount (MSB fill; an `X`/`Z` MSB
    /// fills with `X`).
    pub fn ashr(&self, amount: u32) -> LogicVec {
        let w = self.width();
        let msb = self.bit(w - 1);
        if amount >= w {
            return LogicVec::filled(w, if msb.is_defined() { msb } else { LogicBit::X });
        }
        let mut out = self.lshr(amount);
        let fill = if msb.is_defined() { msb } else { LogicBit::X };
        for i in (w - amount)..w {
            out.set_bit(i, fill);
        }
        out
    }

    /// Left shift by a vector amount; all-`X` if the amount has unknowns.
    pub fn shl_vec(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            Some(n) => self.shl(n.min(self.width() as u64) as u32),
            None => LogicVec::new_x(self.width()),
        }
    }

    /// Logical right shift by a vector amount; all-`X` if the amount has
    /// unknowns.
    pub fn lshr_vec(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            Some(n) => self.lshr(n.min(self.width() as u64) as u32),
            None => LogicVec::new_x(self.width()),
        }
    }

    /// Arithmetic right shift by a vector amount; all-`X` if the amount has
    /// unknowns.
    pub fn ashr_vec(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            Some(n) => self.ashr(n.min(self.width() as u64) as u32),
            None => LogicVec::new_x(self.width()),
        }
    }

    /// Four-state equality (`==`): `X` if either operand has unknown bits.
    pub fn logic_eq(&self, rhs: &LogicVec) -> LogicBit {
        if self.has_unknown() || rhs.has_unknown() {
            return LogicBit::X;
        }
        let w = self.width().max(rhs.width());
        LogicBit::from(self.resize(w) == rhs.resize(w))
    }

    /// Four-state inequality (`!=`).
    pub fn logic_ne(&self, rhs: &LogicVec) -> LogicBit {
        self.logic_eq(rhs).not()
    }

    /// Case equality (`===`): exact four-state identity including `X`/`Z`.
    pub fn case_eq(&self, rhs: &LogicVec) -> bool {
        let w = self.width().max(rhs.width());
        self.resize(w) == rhs.resize(w)
    }

    /// `casez`-style match: `Z` (or `?`) bits in `pattern` match anything.
    ///
    /// Returns `false` (no match) if a non-wildcard pattern bit disagrees,
    /// comparing four-state identity on the remaining bits.
    pub fn casez_match(&self, pattern: &LogicVec) -> bool {
        let w = self.width().max(pattern.width());
        let v = self.resize(w);
        let p = pattern.resize(w);
        for i in 0..w {
            let pb = p.bit(i);
            if pb == LogicBit::Z {
                continue;
            }
            if v.bit(i) != pb {
                return false;
            }
        }
        true
    }

    /// Unsigned `<`; `X` if either operand has unknown bits.
    pub fn lt(&self, rhs: &LogicVec) -> LogicBit {
        match self.cmp_unsigned(rhs) {
            Some(ord) => LogicBit::from(ord == std::cmp::Ordering::Less),
            None => LogicBit::X,
        }
    }

    /// Unsigned `<=`; `X` if either operand has unknown bits.
    pub fn le(&self, rhs: &LogicVec) -> LogicBit {
        match self.cmp_unsigned(rhs) {
            Some(ord) => LogicBit::from(ord != std::cmp::Ordering::Greater),
            None => LogicBit::X,
        }
    }

    /// Unsigned `>`; `X` if either operand has unknown bits.
    pub fn gt(&self, rhs: &LogicVec) -> LogicBit {
        rhs.lt(self)
    }

    /// Unsigned `>=`; `X` if either operand has unknown bits.
    pub fn ge(&self, rhs: &LogicVec) -> LogicBit {
        rhs.le(self)
    }

    /// Unsigned comparison, `None` if either side has unknown bits.
    pub fn cmp_unsigned(&self, rhs: &LogicVec) -> Option<std::cmp::Ordering> {
        if self.has_unknown() || rhs.has_unknown() {
            return None;
        }
        let w = self.width().max(rhs.width());
        let l = self.resize(w);
        let r = rhs.resize(w);
        for i in (0..l.avals().len()).rev() {
            match l.avals()[i].cmp(&r.avals()[i]) {
                std::cmp::Ordering::Equal => continue,
                other => return Some(other),
            }
        }
        Some(std::cmp::Ordering::Equal)
    }

    /// Reduction AND over all bits.
    pub fn red_and(&self) -> LogicBit {
        let mut saw_unknown = false;
        for i in 0..self.avals().len() {
            let (a, b) = (self.avals()[i], self.bvals()[i]);
            let mask = if i == self.avals().len() - 1 {
                top_word_mask(self.width())
            } else {
                u64::MAX
            };
            if (!a & !b) & mask != 0 {
                return LogicBit::Zero;
            }
            if b & mask != 0 {
                saw_unknown = true;
            }
        }
        if saw_unknown {
            LogicBit::X
        } else {
            LogicBit::One
        }
    }

    /// Reduction OR over all bits.
    pub fn red_or(&self) -> LogicBit {
        let mut saw_unknown = false;
        for i in 0..self.avals().len() {
            let (a, b) = (self.avals()[i], self.bvals()[i]);
            if a & !b != 0 {
                return LogicBit::One;
            }
            if b != 0 {
                saw_unknown = true;
            }
        }
        if saw_unknown {
            LogicBit::X
        } else {
            LogicBit::Zero
        }
    }

    /// Reduction XOR (parity) over all bits; `X` if any bit is unknown.
    pub fn red_xor(&self) -> LogicBit {
        if self.has_unknown() {
            return LogicBit::X;
        }
        let ones: u32 = self.avals().iter().map(|w| w.count_ones()).sum();
        LogicBit::from(ones % 2 == 1)
    }

    /// The truth value used by `if`, `&&`, `||`, `!` and the ternary
    /// condition: `1` if any bit is a defined `1`, `0` if all bits are
    /// defined `0`, `X` otherwise.
    pub fn truth(&self) -> LogicBit {
        self.red_or()
    }

    /// Per-bit merge used when a ternary condition is unknown: bits where
    /// both sides agree (and are defined) keep their value, all others
    /// become `X`.
    pub fn merge_x(&self, rhs: &LogicVec) -> LogicVec {
        let w = self.width().max(rhs.width());
        let l = self.resize(w);
        let r = rhs.resize(w);
        let mut out = LogicVec::zeros(w);
        for i in 0..w {
            let (a, b) = (l.bit(i), r.bit(i));
            out.set_bit(
                i,
                if a == b && a.is_defined() {
                    a
                } else {
                    LogicBit::X
                },
            );
        }
        out
    }
}

enum ShiftKind {
    Left,
    Right,
}

/// Word-parallel shift of both planes. `amount < width` is guaranteed.
fn shift_words(w: u32, v: &LogicVec, amount: u32, kind: ShiftKind) -> LogicVec {
    let ws = (amount / 64) as usize;
    let bs = amount % 64;
    LogicVec::from_fn(w, |aval, bval| {
        let n = aval.len();
        let shift_plane = |src: &[u64], dst: &mut [u64]| {
            for i in 0..n {
                dst[i] = match kind {
                    ShiftKind::Left => {
                        let lo = if i >= ws { src[i - ws] << bs } else { 0 };
                        let hi = if bs > 0 && i > ws {
                            src[i - ws - 1] >> (64 - bs)
                        } else {
                            0
                        };
                        lo | hi
                    }
                    ShiftKind::Right => {
                        let lo = if i + ws < n { src[i + ws] >> bs } else { 0 };
                        let hi = if bs > 0 && i + ws + 1 < n {
                            src[i + ws + 1] << (64 - bs)
                        } else {
                            0
                        };
                        lo | hi
                    }
                };
            }
        };
        shift_plane(v.avals(), aval);
        shift_plane(v.bvals(), bval);
    })
}

/// Word-array unsigned `>=`.
fn ge_words(a: &[u64], b: &[u64]) -> bool {
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => continue,
        }
    }
    true
}

/// Word-array in-place subtraction (`a -= b`), assuming `a >= b`.
fn sub_words_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
}

#[cfg(test)]
mod tests {
    use crate::{LogicBit, LogicVec};

    fn v(w: u32, x: u64) -> LogicVec {
        LogicVec::from_u64(w, x)
    }

    #[test]
    fn and_or_xor_defined() {
        assert_eq!(v(8, 0xcc).and(&v(8, 0xaa)).to_u64(), Some(0x88));
        assert_eq!(v(8, 0xcc).or(&v(8, 0xaa)).to_u64(), Some(0xee));
        assert_eq!(v(8, 0xcc).xor(&v(8, 0xaa)).to_u64(), Some(0x66));
        assert_eq!(v(8, 0xcc).xnor(&v(8, 0xaa)).to_u64(), Some(0x99));
        assert_eq!(v(8, 0xcc).not().to_u64(), Some(0x33));
    }

    #[test]
    fn and_x_dominance() {
        let mut x = v(4, 0b0101);
        x.set_bit(3, LogicBit::X);
        let r = x.and(&v(4, 0b1011));
        assert_eq!(r.bit(0), LogicBit::One);
        assert_eq!(r.bit(1), LogicBit::Zero);
        assert_eq!(r.bit(2), LogicBit::Zero); // x's bit2=1 & rhs 0 -> 0
        assert_eq!(r.bit(3), LogicBit::X); // X & 1 -> X
    }

    #[test]
    fn or_one_dominates_x() {
        let x = LogicVec::new_x(4);
        let r = x.or(&v(4, 0b0011));
        assert_eq!(r.bit(0), LogicBit::One);
        assert_eq!(r.bit(1), LogicBit::One);
        assert_eq!(r.bit(2), LogicBit::X);
    }

    #[test]
    fn add_sub_basic() {
        assert_eq!(v(8, 250).add(&v(8, 10)).to_u64(), Some(4)); // wraps
        assert_eq!(v(8, 5).sub(&v(8, 10)).to_u64(), Some(251)); // wraps
        assert_eq!(v(16, 5).add(&v(8, 10)).to_u64(), Some(15)); // width ext
    }

    #[test]
    fn add_multiword_carry() {
        let a = v(128, u64::MAX);
        let one = v(128, 1);
        let s = a.add(&one);
        assert_eq!(s.avals()[0], 0);
        assert_eq!(s.avals()[1], 1);
    }

    #[test]
    fn arithmetic_is_pessimistic_about_x() {
        let x = LogicVec::new_x(8);
        assert!(v(8, 1).add(&x).has_unknown());
        assert!(v(8, 1).mul(&x).has_unknown());
        assert_eq!(v(8, 1).add(&x).to_u64(), None);
    }

    #[test]
    fn neg_is_twos_complement() {
        assert_eq!(v(8, 1).neg().to_u64(), Some(0xff));
        assert_eq!(v(8, 0).neg().to_u64(), Some(0));
    }

    #[test]
    fn mul_matches_u128() {
        let a = v(64, 0xdead_beef_1234_5678);
        let b = v(64, 0x1000_0001);
        let expect = (0xdead_beef_1234_5678u128 * 0x1000_0001u128) as u64;
        assert_eq!(a.mul(&b).to_u64(), Some(expect));
    }

    #[test]
    fn wide_mul() {
        let a = v(128, u64::MAX);
        let r = a.mul(&v(128, 2));
        assert_eq!(r.avals()[0], u64::MAX - 1);
        assert_eq!(r.avals()[1], 1);
    }

    #[test]
    fn div_rem_narrow_and_wide() {
        assert_eq!(v(8, 100).div(&v(8, 7)).to_u64(), Some(14));
        assert_eq!(v(8, 100).rem(&v(8, 7)).to_u64(), Some(2));
        let a = v(128, 1_000_000_007);
        assert_eq!(a.div(&v(128, 13)).to_u64(), Some(1_000_000_007 / 13));
        assert_eq!(a.rem(&v(128, 13)).to_u64(), Some(1_000_000_007 % 13));
    }

    #[test]
    fn div_by_zero_is_x() {
        assert!(v(8, 3).div(&v(8, 0)).has_unknown());
        assert!(v(8, 3).rem(&v(8, 0)).has_unknown());
    }

    #[test]
    fn shifts() {
        assert_eq!(v(8, 0b0001_0110).shl(2).to_u64(), Some(0b0101_1000));
        assert_eq!(v(8, 0b0001_0110).lshr(2).to_u64(), Some(0b0000_0101));
        assert_eq!(v(8, 0x96).ashr(4).to_u64(), Some(0xf9));
        assert_eq!(v(8, 0x16).ashr(4).to_u64(), Some(0x01));
        assert_eq!(v(8, 1).shl(8).to_u64(), Some(0));
        assert_eq!(v(8, 0x80).lshr(9).to_u64(), Some(0));
    }

    #[test]
    fn wide_shifts_cross_words() {
        let a = v(128, 1).shl(100);
        assert_eq!(a.avals()[1], 1u64 << 36);
        assert_eq!(a.lshr(100).to_u64(), Some(1));
        let b = v(192, 0xffff).shl(64);
        assert_eq!(b.avals()[0], 0);
        assert_eq!(b.avals()[1], 0xffff);
    }

    #[test]
    fn shift_by_unknown_amount_is_x() {
        let amt = LogicVec::new_x(3);
        assert!(v(8, 1).shl_vec(&amt).has_unknown());
        assert!(v(8, 1).lshr_vec(&amt).has_unknown());
    }

    #[test]
    fn equality_operators() {
        assert_eq!(v(8, 5).logic_eq(&v(8, 5)), LogicBit::One);
        assert_eq!(v(8, 5).logic_eq(&v(8, 6)), LogicBit::Zero);
        assert_eq!(v(8, 5).logic_ne(&v(8, 6)), LogicBit::One);
        let x = LogicVec::new_x(8);
        assert_eq!(v(8, 5).logic_eq(&x), LogicBit::X);
        assert!(x.case_eq(&LogicVec::new_x(8)));
        assert!(!x.case_eq(&v(8, 5)));
    }

    #[test]
    fn casez_wildcards() {
        let pat = LogicVec::parse_literal("4'b1?0?").unwrap();
        assert!(v(4, 0b1000).casez_match(&pat));
        assert!(v(4, 0b1101).casez_match(&pat));
        assert!(!v(4, 0b0101).casez_match(&pat));
        assert!(!v(4, 0b1110).casez_match(&pat));
    }

    #[test]
    fn unsigned_compares() {
        assert_eq!(v(8, 3).lt(&v(8, 5)), LogicBit::One);
        assert_eq!(v(8, 5).lt(&v(8, 3)), LogicBit::Zero);
        assert_eq!(v(8, 5).le(&v(8, 5)), LogicBit::One);
        assert_eq!(v(8, 5).ge(&v(8, 6)), LogicBit::Zero);
        assert_eq!(v(8, 7).gt(&v(8, 6)), LogicBit::One);
        assert_eq!(v(8, 3).lt(&LogicVec::new_x(8)), LogicBit::X);
    }

    #[test]
    fn wide_compare() {
        let big = v(128, 1).shl(100);
        assert_eq!(v(128, u64::MAX).lt(&big), LogicBit::One);
        assert_eq!(big.gt(&v(128, u64::MAX)), LogicBit::One);
    }

    #[test]
    fn reductions() {
        assert_eq!(v(4, 0xf).red_and(), LogicBit::One);
        assert_eq!(v(4, 0x7).red_and(), LogicBit::Zero);
        assert_eq!(v(4, 0x0).red_or(), LogicBit::Zero);
        assert_eq!(v(4, 0x2).red_or(), LogicBit::One);
        assert_eq!(v(4, 0x3).red_xor(), LogicBit::Zero);
        assert_eq!(v(4, 0x7).red_xor(), LogicBit::One);
        let mut partial = v(4, 0x7);
        partial.set_bit(3, LogicBit::X);
        assert_eq!(partial.red_and(), LogicBit::X);
        assert_eq!(partial.red_or(), LogicBit::One); // has a defined 1
        assert_eq!(partial.red_xor(), LogicBit::X);
        let mut zx = v(4, 0);
        zx.set_bit(1, LogicBit::X);
        assert_eq!(zx.red_or(), LogicBit::X);
        assert_eq!(zx.red_and(), LogicBit::Zero);
    }

    #[test]
    fn truthiness() {
        assert_eq!(v(8, 0).truth(), LogicBit::Zero);
        assert_eq!(v(8, 4).truth(), LogicBit::One);
        let mut m = v(8, 0);
        m.set_bit(7, LogicBit::X);
        assert_eq!(m.truth(), LogicBit::X);
        m.set_bit(0, LogicBit::One);
        assert_eq!(m.truth(), LogicBit::One);
    }

    #[test]
    fn merge_x_agreeing_bits_survive() {
        let a = v(4, 0b1010);
        let b = v(4, 0b1001);
        let m = a.merge_x(&b);
        assert_eq!(m.bit(3), LogicBit::One);
        assert_eq!(m.bit(2), LogicBit::Zero);
        assert_eq!(m.bit(1), LogicBit::X);
        assert_eq!(m.bit(0), LogicBit::X);
    }
}
