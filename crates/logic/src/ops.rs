//! The RTL operator set on [`LogicVec`].
//!
//! All binary operations self-extend both operands to the wider of the two
//! widths (zero-extension), evaluate, and produce a result of that width —
//! the simplified width model documented in the frontend. Comparison and
//! reduction operators produce a [`LogicBit`].
//!
//! Arithmetic is unsigned and pessimistic about unknowns: any `X`/`Z` bit in
//! any operand yields an all-`X` result, as in mainstream event-driven
//! simulators.
//!
//! Every hot operator exists in two forms: an **in-place** variant
//! (`and_assign`, `add_assign`, `not_assign`, `shl_vec_assign`,
//! `merge_x_assign`, ...) that mutates the left operand without touching
//! the allocator (for widths up to 64 bits, and for wider values whose word
//! count is unchanged), and the original **pure** form, kept as a thin
//! wrapper that clones and delegates. Comparisons and reductions operate on
//! zero-padded words directly and never allocate.

use crate::vec::{top_word_mask, words_for};
use crate::{LogicBit, LogicVec};

/// Word `i` of a plane, reading past the end as zero — the word-level view
/// of zero-extension to a common width.
#[inline]
fn padded(words: &[u64], i: usize) -> u64 {
    words.get(i).copied().unwrap_or(0)
}

impl LogicVec {
    /// Widens `self` to the common (max) width and combines the planes
    /// word-by-word with `rhs` (zero-padded) in place.
    fn bitwise_assign_with(
        &mut self,
        rhs: &LogicVec,
        f: impl Fn(u64, u64, u64, u64) -> (u64, u64),
    ) {
        let w = self.width().max(rhs.width());
        // Inline fast path: both operands are single (normalized) words.
        if let (Some((la, lb)), Some((ra, rb))) = (self.inline_parts(), rhs.inline_parts()) {
            let (a, b) = f(la, lb, ra, rb);
            let m = top_word_mask(w);
            self.set_inline(w, a & m, b & m);
            return;
        }
        self.resize_assign(w);
        let (ra, rb) = (rhs.avals(), rhs.bvals());
        let (a, b) = self.planes_mut();
        for i in 0..a.len() {
            let (na, nb) = f(a[i], b[i], padded(ra, i), padded(rb, i));
            a[i] = na;
            b[i] = nb;
        }
        self.normalize();
    }

    /// In-place bitwise four-state AND: `self = self & rhs` at the common
    /// width. Allocation-free unless `self` must grow across a word count.
    pub fn and_assign(&mut self, rhs: &LogicVec) {
        self.bitwise_assign_with(rhs, |la, lb, ra, rb| {
            let def0 = (!la & !lb) | (!ra & !rb);
            let x = (lb | rb) & !def0;
            let one = (la & !lb) & (ra & !rb);
            (one | x, x)
        })
    }

    /// In-place bitwise four-state OR.
    pub fn or_assign(&mut self, rhs: &LogicVec) {
        self.bitwise_assign_with(rhs, |la, lb, ra, rb| {
            let one = (la & !lb) | (ra & !rb);
            let x = (lb | rb) & !one;
            (one | x, x)
        })
    }

    /// In-place bitwise four-state XOR.
    pub fn xor_assign(&mut self, rhs: &LogicVec) {
        self.bitwise_assign_with(rhs, |la, lb, ra, rb| {
            let x = lb | rb;
            (((la ^ ra) & !x) | x, x)
        })
    }

    /// In-place bitwise four-state XNOR.
    pub fn xnor_assign(&mut self, rhs: &LogicVec) {
        self.bitwise_assign_with(rhs, |la, lb, ra, rb| {
            let x = lb | rb;
            ((!(la ^ ra) & !x) | x, x)
        })
    }

    /// In-place bitwise four-state NOT.
    pub fn not_assign(&mut self) {
        if let Some((a, b)) = self.inline_parts() {
            let m = top_word_mask(self.width());
            self.set_inline(self.width(), ((!a & !b) | b) & m, b);
            return;
        }
        let (a, b) = self.planes_mut();
        for i in 0..a.len() {
            let (av, bv) = (a[i], b[i]);
            a[i] = (!av & !bv) | bv;
        }
        self.normalize();
    }

    /// Bitwise four-state AND.
    pub fn and(&self, rhs: &LogicVec) -> LogicVec {
        let mut out = self.clone();
        out.and_assign(rhs);
        out
    }

    /// Bitwise four-state OR.
    pub fn or(&self, rhs: &LogicVec) -> LogicVec {
        let mut out = self.clone();
        out.or_assign(rhs);
        out
    }

    /// Bitwise four-state XOR.
    pub fn xor(&self, rhs: &LogicVec) -> LogicVec {
        let mut out = self.clone();
        out.xor_assign(rhs);
        out
    }

    /// Bitwise four-state XNOR.
    pub fn xnor(&self, rhs: &LogicVec) -> LogicVec {
        let mut out = self.clone();
        out.xnor_assign(rhs);
        out
    }

    /// Bitwise four-state NOT.
    pub fn not(&self) -> LogicVec {
        let mut out = self.clone();
        out.not_assign();
        out
    }

    /// In-place addition modulo `2^w` where `w = max(widths)`; all-`X` on
    /// unknowns.
    pub fn add_assign(&mut self, rhs: &LogicVec) {
        let w = self.width().max(rhs.width());
        if let (Some((la, lb)), Some((ra, rb))) = (self.inline_parts(), rhs.inline_parts()) {
            let m = top_word_mask(w);
            if lb | rb == 0 {
                self.set_inline(w, la.wrapping_add(ra) & m, 0);
            } else {
                self.set_inline(w, m, m); // all-X
            }
            return;
        }
        if self.has_unknown() || rhs.has_unknown() {
            self.make_x(w);
            return;
        }
        self.resize_assign(w);
        let ra = rhs.avals();
        let (a, _) = self.planes_mut();
        let mut carry = 0u64;
        for (i, slot) in a.iter_mut().enumerate() {
            let (s1, c1) = slot.overflowing_add(padded(ra, i));
            let (s2, c2) = s1.overflowing_add(carry);
            *slot = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        self.normalize();
    }

    /// In-place subtraction modulo `2^w`; all-`X` on unknowns.
    pub fn sub_assign(&mut self, rhs: &LogicVec) {
        let w = self.width().max(rhs.width());
        if let (Some((la, lb)), Some((ra, rb))) = (self.inline_parts(), rhs.inline_parts()) {
            let m = top_word_mask(w);
            if lb | rb == 0 {
                self.set_inline(w, la.wrapping_sub(ra) & m, 0);
            } else {
                self.set_inline(w, m, m); // all-X
            }
            return;
        }
        if self.has_unknown() || rhs.has_unknown() {
            self.make_x(w);
            return;
        }
        self.resize_assign(w);
        let ra = rhs.avals();
        let (a, _) = self.planes_mut();
        let mut borrow = 0u64;
        for (i, slot) in a.iter_mut().enumerate() {
            let (d1, b1) = slot.overflowing_sub(padded(ra, i));
            let (d2, b2) = d1.overflowing_sub(borrow);
            *slot = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        self.normalize();
    }

    /// In-place two's-complement negation; all-`X` on unknowns.
    pub fn neg_assign(&mut self) {
        if self.has_unknown() {
            let w = self.width();
            self.make_x(w);
            return;
        }
        let (a, _) = self.planes_mut();
        let mut carry = 1u64;
        for slot in a.iter_mut() {
            let (s, c) = (!*slot).overflowing_add(carry);
            *slot = s;
            carry = c as u64;
        }
        self.normalize();
    }

    /// Addition modulo `2^w` where `w = max(widths)`; all-`X` on unknowns.
    pub fn add(&self, rhs: &LogicVec) -> LogicVec {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }

    /// Subtraction modulo `2^w`; all-`X` on unknowns.
    pub fn sub(&self, rhs: &LogicVec) -> LogicVec {
        let mut out = self.clone();
        out.sub_assign(rhs);
        out
    }

    /// Two's-complement negation; all-`X` on unknowns.
    pub fn neg(&self) -> LogicVec {
        let mut out = self.clone();
        out.neg_assign();
        out
    }

    /// Multiplication modulo `2^w` written into `out` (which must not alias
    /// an operand — guaranteed by `&mut`); all-`X` on unknowns.
    /// Allocation-free when `out`'s storage already fits `w` bits.
    pub fn mul_into(&self, rhs: &LogicVec, out: &mut LogicVec) {
        let w = self.width().max(rhs.width());
        if self.has_unknown() || rhs.has_unknown() {
            out.make_x(w);
            return;
        }
        out.make_zeros(w);
        let n = words_for(w);
        let (la, ra) = (self.avals(), rhs.avals());
        let (aval, _) = out.planes_mut();
        for i in 0..n {
            let mut carry = 0u128;
            for j in 0..(n - i) {
                let p = padded(la, i) as u128 * padded(ra, j) as u128 + aval[i + j] as u128 + carry;
                aval[i + j] = p as u64;
                carry = p >> 64;
            }
        }
        out.normalize();
    }

    /// Multiplication modulo `2^w`; all-`X` on unknowns.
    pub fn mul(&self, rhs: &LogicVec) -> LogicVec {
        let mut out = LogicVec::zeros(1);
        self.mul_into(rhs, &mut out);
        out
    }

    /// Unsigned division written into `out`; all-`X` on unknowns or a zero
    /// divisor. Allocation-free for widths up to 64 bits (the wide path
    /// allocates working buffers internally).
    pub fn div_into(&self, rhs: &LogicVec, out: &mut LogicVec) {
        let w = self.width().max(rhs.width());
        if self.has_unknown() || rhs.has_unknown() || rhs.is_zero() {
            out.make_x(w);
        } else if w <= 64 {
            let a = self.to_u64().expect("defined <=64-bit value");
            let b = rhs.to_u64().expect("defined <=64-bit value");
            out.assign_u64(w, a / b);
        } else {
            out.assign_from(&self.div_rem(rhs).0);
        }
    }

    /// Unsigned remainder written into `out`; all-`X` on unknowns or a zero
    /// divisor. Allocation-free for widths up to 64 bits.
    pub fn rem_into(&self, rhs: &LogicVec, out: &mut LogicVec) {
        let w = self.width().max(rhs.width());
        if self.has_unknown() || rhs.has_unknown() || rhs.is_zero() {
            out.make_x(w);
        } else if w <= 64 {
            let a = self.to_u64().expect("defined <=64-bit value");
            let b = rhs.to_u64().expect("defined <=64-bit value");
            out.assign_u64(w, a % b);
        } else {
            out.assign_from(&self.div_rem(rhs).1);
        }
    }

    /// Unsigned division; all-`X` on unknowns or a zero divisor.
    pub fn div(&self, rhs: &LogicVec) -> LogicVec {
        self.div_rem(rhs).0
    }

    /// Unsigned remainder; all-`X` on unknowns or a zero divisor.
    pub fn rem(&self, rhs: &LogicVec) -> LogicVec {
        self.div_rem(rhs).1
    }

    /// Unsigned division and remainder together.
    ///
    /// Returns `(all-X, all-X)` if either operand has unknown bits or the
    /// divisor is zero.
    pub fn div_rem(&self, rhs: &LogicVec) -> (LogicVec, LogicVec) {
        let w = self.width().max(rhs.width());
        if self.has_unknown() || rhs.has_unknown() || rhs.is_zero() {
            return (LogicVec::new_x(w), LogicVec::new_x(w));
        }
        if w <= 64 {
            let a = self.to_u64().expect("defined <=64-bit value");
            let b = rhs.to_u64().expect("defined <=64-bit value");
            return (LogicVec::from_u64(w, a / b), LogicVec::from_u64(w, a % b));
        }
        // Bit-serial restoring division for wide values.
        let l = self.resize(w);
        let r = rhs.resize(w);
        let n = words_for(w);
        let mut quot = vec![0u64; n];
        let mut remw = vec![0u64; n];
        for i in (0..w).rev() {
            // remw = remw << 1 | dividend[i]
            let mut carry = (l.avals()[(i / 64) as usize] >> (i % 64)) & 1;
            for word in remw.iter_mut() {
                let top = *word >> 63;
                *word = (*word << 1) | carry;
                carry = top;
            }
            if ge_words(&remw, r.avals()) {
                sub_words_in_place(&mut remw, r.avals());
                quot[(i / 64) as usize] |= 1u64 << (i % 64);
            }
        }
        let q = LogicVec::from_fn(w, |aval, _| aval.copy_from_slice(&quot));
        let rm = LogicVec::from_fn(w, |aval, _| aval.copy_from_slice(&remw));
        (q, rm)
    }

    /// In-place logical left shift by a constant amount (zero fill).
    pub fn shl_assign(&mut self, amount: u32) {
        let w = self.width();
        if amount >= w {
            self.make_zeros(w);
            return;
        }
        if amount == 0 {
            return;
        }
        let ws = (amount / 64) as usize;
        let bs = amount % 64;
        let (a, b) = self.planes_mut();
        shift_plane_left(a, ws, bs);
        shift_plane_left(b, ws, bs);
        self.normalize();
    }

    /// In-place logical right shift by a constant amount (zero fill).
    pub fn lshr_assign(&mut self, amount: u32) {
        let w = self.width();
        if amount >= w {
            self.make_zeros(w);
            return;
        }
        if amount == 0 {
            return;
        }
        let ws = (amount / 64) as usize;
        let bs = amount % 64;
        let (a, b) = self.planes_mut();
        shift_plane_right(a, ws, bs);
        shift_plane_right(b, ws, bs);
        self.normalize();
    }

    /// In-place arithmetic right shift by a constant amount (MSB fill; an
    /// `X`/`Z` MSB fills with `X`).
    pub fn ashr_assign(&mut self, amount: u32) {
        let w = self.width();
        let msb = self.bit(w - 1);
        let fill = if msb.is_defined() { msb } else { LogicBit::X };
        if amount >= w {
            self.make_filled(w, fill);
            return;
        }
        self.lshr_assign(amount);
        for i in (w - amount)..w {
            self.set_bit(i, fill);
        }
    }

    /// The shift amount `amount` encodes, saturated to "shift everything
    /// out" (`self.width()`), or `None` for a genuinely unknown amount.
    ///
    /// A fully-defined amount that merely does not fit in 64 bits is still
    /// a valid (huge) shift count — it saturates like any amount `>=
    /// width`, it does not poison the result. Only `X`/`Z` bits in the
    /// amount yield `None` (and an all-`X` result in the callers).
    #[inline]
    fn saturated_shift_amount(&self, amount: &LogicVec) -> Option<u32> {
        if amount.has_unknown() {
            return None;
        }
        Some(match amount.to_u64() {
            Some(n) => n.min(self.width() as u64) as u32,
            // Defined but wider than 64 bits: shifts everything out.
            None => self.width(),
        })
    }

    /// In-place left shift by a vector amount; all-`X` if the amount has
    /// unknowns, zero fill when a defined amount reaches or exceeds the
    /// width (however wide the amount vector is).
    pub fn shl_vec_assign(&mut self, amount: &LogicVec) {
        match self.saturated_shift_amount(amount) {
            Some(n) => self.shl_assign(n),
            None => {
                let w = self.width();
                self.make_x(w);
            }
        }
    }

    /// In-place logical right shift by a vector amount; all-`X` if the
    /// amount has unknowns, zero fill when a defined amount reaches or
    /// exceeds the width.
    pub fn lshr_vec_assign(&mut self, amount: &LogicVec) {
        match self.saturated_shift_amount(amount) {
            Some(n) => self.lshr_assign(n),
            None => {
                let w = self.width();
                self.make_x(w);
            }
        }
    }

    /// In-place arithmetic right shift by a vector amount; all-`X` if the
    /// amount has unknowns, sign (MSB) fill when a defined amount reaches
    /// or exceeds the width.
    pub fn ashr_vec_assign(&mut self, amount: &LogicVec) {
        match self.saturated_shift_amount(amount) {
            Some(n) => self.ashr_assign(n),
            None => {
                let w = self.width();
                self.make_x(w);
            }
        }
    }

    /// Logical left shift by a constant amount (zero fill).
    pub fn shl(&self, amount: u32) -> LogicVec {
        let mut out = self.clone();
        out.shl_assign(amount);
        out
    }

    /// Logical right shift by a constant amount (zero fill).
    pub fn lshr(&self, amount: u32) -> LogicVec {
        let mut out = self.clone();
        out.lshr_assign(amount);
        out
    }

    /// Arithmetic right shift by a constant amount (MSB fill; an `X`/`Z` MSB
    /// fills with `X`).
    pub fn ashr(&self, amount: u32) -> LogicVec {
        let mut out = self.clone();
        out.ashr_assign(amount);
        out
    }

    /// Left shift by a vector amount; all-`X` if the amount has unknowns.
    pub fn shl_vec(&self, amount: &LogicVec) -> LogicVec {
        let mut out = self.clone();
        out.shl_vec_assign(amount);
        out
    }

    /// Logical right shift by a vector amount; all-`X` if the amount has
    /// unknowns.
    pub fn lshr_vec(&self, amount: &LogicVec) -> LogicVec {
        let mut out = self.clone();
        out.lshr_vec_assign(amount);
        out
    }

    /// Arithmetic right shift by a vector amount; all-`X` if the amount has
    /// unknowns.
    pub fn ashr_vec(&self, amount: &LogicVec) -> LogicVec {
        let mut out = self.clone();
        out.ashr_vec_assign(amount);
        out
    }

    /// Four-state equality (`==`): `X` if either operand has unknown bits.
    /// Never allocates: operands are compared on zero-padded words.
    pub fn logic_eq(&self, rhs: &LogicVec) -> LogicBit {
        if self.has_unknown() || rhs.has_unknown() {
            return LogicBit::X;
        }
        let n = words_for(self.width().max(rhs.width()));
        let (la, ra) = (self.avals(), rhs.avals());
        LogicBit::from((0..n).all(|i| padded(la, i) == padded(ra, i)))
    }

    /// Four-state inequality (`!=`).
    pub fn logic_ne(&self, rhs: &LogicVec) -> LogicBit {
        self.logic_eq(rhs).not()
    }

    /// Case equality (`===`): exact four-state identity including `X`/`Z`,
    /// at the zero-extended common width. Never allocates.
    pub fn case_eq(&self, rhs: &LogicVec) -> bool {
        let n = words_for(self.width().max(rhs.width()));
        let (la, lb) = (self.avals(), self.bvals());
        let (ra, rb) = (rhs.avals(), rhs.bvals());
        (0..n).all(|i| padded(la, i) == padded(ra, i) && padded(lb, i) == padded(rb, i))
    }

    /// `casez`-style match: `Z` (or `?`) bits in `pattern` match anything.
    ///
    /// Returns `false` (no match) if a non-wildcard pattern bit disagrees,
    /// comparing four-state identity on the remaining bits. Never
    /// allocates.
    pub fn casez_match(&self, pattern: &LogicVec) -> bool {
        let n = words_for(self.width().max(pattern.width()));
        let (va, vb) = (self.avals(), self.bvals());
        let (pa, pb) = (pattern.avals(), pattern.bvals());
        for i in 0..n {
            let (pav, pbv) = (padded(pa, i), padded(pb, i));
            // Z pattern bits (a=0, b=1) are wildcards.
            let wild = !pav & pbv;
            if (padded(va, i) ^ pav) & !wild != 0 || (padded(vb, i) ^ pbv) & !wild != 0 {
                return false;
            }
        }
        true
    }

    /// Unsigned `<`; `X` if either operand has unknown bits.
    pub fn lt(&self, rhs: &LogicVec) -> LogicBit {
        match self.cmp_unsigned(rhs) {
            Some(ord) => LogicBit::from(ord == std::cmp::Ordering::Less),
            None => LogicBit::X,
        }
    }

    /// Unsigned `<=`; `X` if either operand has unknown bits.
    pub fn le(&self, rhs: &LogicVec) -> LogicBit {
        match self.cmp_unsigned(rhs) {
            Some(ord) => LogicBit::from(ord != std::cmp::Ordering::Greater),
            None => LogicBit::X,
        }
    }

    /// Unsigned `>`; `X` if either operand has unknown bits.
    pub fn gt(&self, rhs: &LogicVec) -> LogicBit {
        rhs.lt(self)
    }

    /// Unsigned `>=`; `X` if either operand has unknown bits.
    pub fn ge(&self, rhs: &LogicVec) -> LogicBit {
        rhs.le(self)
    }

    /// Unsigned comparison, `None` if either side has unknown bits. Never
    /// allocates.
    pub fn cmp_unsigned(&self, rhs: &LogicVec) -> Option<std::cmp::Ordering> {
        if self.has_unknown() || rhs.has_unknown() {
            return None;
        }
        let n = words_for(self.width().max(rhs.width()));
        let (la, ra) = (self.avals(), rhs.avals());
        for i in (0..n).rev() {
            match padded(la, i).cmp(&padded(ra, i)) {
                std::cmp::Ordering::Equal => continue,
                other => return Some(other),
            }
        }
        Some(std::cmp::Ordering::Equal)
    }

    /// Reduction AND over all bits.
    pub fn red_and(&self) -> LogicBit {
        let mut saw_unknown = false;
        for i in 0..self.avals().len() {
            let (a, b) = (self.avals()[i], self.bvals()[i]);
            let mask = if i == self.avals().len() - 1 {
                top_word_mask(self.width())
            } else {
                u64::MAX
            };
            if (!a & !b) & mask != 0 {
                return LogicBit::Zero;
            }
            if b & mask != 0 {
                saw_unknown = true;
            }
        }
        if saw_unknown {
            LogicBit::X
        } else {
            LogicBit::One
        }
    }

    /// Reduction OR over all bits.
    pub fn red_or(&self) -> LogicBit {
        let mut saw_unknown = false;
        for i in 0..self.avals().len() {
            let (a, b) = (self.avals()[i], self.bvals()[i]);
            if a & !b != 0 {
                return LogicBit::One;
            }
            if b != 0 {
                saw_unknown = true;
            }
        }
        if saw_unknown {
            LogicBit::X
        } else {
            LogicBit::Zero
        }
    }

    /// Reduction XOR (parity) over all bits; `X` if any bit is unknown.
    pub fn red_xor(&self) -> LogicBit {
        if self.has_unknown() {
            return LogicBit::X;
        }
        let ones: u32 = self.avals().iter().map(|w| w.count_ones()).sum();
        LogicBit::from(ones % 2 == 1)
    }

    /// The truth value used by `if`, `&&`, `||`, `!` and the ternary
    /// condition: `1` if any bit is a defined `1`, `0` if all bits are
    /// defined `0`, `X` otherwise.
    pub fn truth(&self) -> LogicBit {
        self.red_or()
    }

    /// In-place per-bit merge used when a ternary condition is unknown:
    /// bits where both sides agree (and are defined) keep their value, all
    /// others become `X`. Word-parallel, never allocates (up to the usual
    /// word-count caveat on growth).
    pub fn merge_x_assign(&mut self, rhs: &LogicVec) {
        self.bitwise_assign_with(rhs, |la, lb, ra, rb| {
            // agree = identical four-state bit, keep = agree and defined;
            // everything else becomes X (a=1, b=1).
            let agree = !(la ^ ra) & !(lb ^ rb);
            let keep = agree & !lb;
            ((la & keep) | !keep, !keep)
        })
    }

    /// Per-bit merge used when a ternary condition is unknown: bits where
    /// both sides agree (and are defined) keep their value, all others
    /// become `X`.
    pub fn merge_x(&self, rhs: &LogicVec) -> LogicVec {
        let mut out = self.clone();
        out.merge_x_assign(rhs);
        out
    }
}

/// In-place word-parallel left shift of one plane (`ws` whole words plus
/// `bs < 64` bits). Writes descending indices, so each word is read before
/// it is overwritten.
fn shift_plane_left(p: &mut [u64], ws: usize, bs: u32) {
    let n = p.len();
    for i in (0..n).rev() {
        let lo = if i >= ws { p[i - ws] << bs } else { 0 };
        let hi = if bs > 0 && i > ws {
            p[i - ws - 1] >> (64 - bs)
        } else {
            0
        };
        p[i] = lo | hi;
    }
}

/// In-place word-parallel right shift of one plane. Writes ascending
/// indices, so each word is read before it is overwritten.
fn shift_plane_right(p: &mut [u64], ws: usize, bs: u32) {
    let n = p.len();
    for i in 0..n {
        let lo = if i + ws < n { p[i + ws] >> bs } else { 0 };
        let hi = if bs > 0 && i + ws + 1 < n {
            p[i + ws + 1] << (64 - bs)
        } else {
            0
        };
        p[i] = lo | hi;
    }
}

/// Word-array unsigned `>=`.
fn ge_words(a: &[u64], b: &[u64]) -> bool {
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => continue,
        }
    }
    true
}

/// Word-array in-place subtraction (`a -= b`), assuming `a >= b`.
fn sub_words_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
}

#[cfg(test)]
mod tests {
    use crate::{LogicBit, LogicVec};

    fn v(w: u32, x: u64) -> LogicVec {
        LogicVec::from_u64(w, x)
    }

    #[test]
    fn and_or_xor_defined() {
        assert_eq!(v(8, 0xcc).and(&v(8, 0xaa)).to_u64(), Some(0x88));
        assert_eq!(v(8, 0xcc).or(&v(8, 0xaa)).to_u64(), Some(0xee));
        assert_eq!(v(8, 0xcc).xor(&v(8, 0xaa)).to_u64(), Some(0x66));
        assert_eq!(v(8, 0xcc).xnor(&v(8, 0xaa)).to_u64(), Some(0x99));
        assert_eq!(v(8, 0xcc).not().to_u64(), Some(0x33));
    }

    #[test]
    fn and_x_dominance() {
        let mut x = v(4, 0b0101);
        x.set_bit(3, LogicBit::X);
        let r = x.and(&v(4, 0b1011));
        assert_eq!(r.bit(0), LogicBit::One);
        assert_eq!(r.bit(1), LogicBit::Zero);
        assert_eq!(r.bit(2), LogicBit::Zero); // x's bit2=1 & rhs 0 -> 0
        assert_eq!(r.bit(3), LogicBit::X); // X & 1 -> X
    }

    #[test]
    fn or_one_dominates_x() {
        let x = LogicVec::new_x(4);
        let r = x.or(&v(4, 0b0011));
        assert_eq!(r.bit(0), LogicBit::One);
        assert_eq!(r.bit(1), LogicBit::One);
        assert_eq!(r.bit(2), LogicBit::X);
    }

    #[test]
    fn add_sub_basic() {
        assert_eq!(v(8, 250).add(&v(8, 10)).to_u64(), Some(4)); // wraps
        assert_eq!(v(8, 5).sub(&v(8, 10)).to_u64(), Some(251)); // wraps
        assert_eq!(v(16, 5).add(&v(8, 10)).to_u64(), Some(15)); // width ext
    }

    #[test]
    fn add_multiword_carry() {
        let a = v(128, u64::MAX);
        let one = v(128, 1);
        let s = a.add(&one);
        assert_eq!(s.avals()[0], 0);
        assert_eq!(s.avals()[1], 1);
    }

    #[test]
    fn arithmetic_is_pessimistic_about_x() {
        let x = LogicVec::new_x(8);
        assert!(v(8, 1).add(&x).has_unknown());
        assert!(v(8, 1).mul(&x).has_unknown());
        assert_eq!(v(8, 1).add(&x).to_u64(), None);
    }

    #[test]
    fn neg_is_twos_complement() {
        assert_eq!(v(8, 1).neg().to_u64(), Some(0xff));
        assert_eq!(v(8, 0).neg().to_u64(), Some(0));
    }

    #[test]
    fn mul_matches_u128() {
        let a = v(64, 0xdead_beef_1234_5678);
        let b = v(64, 0x1000_0001);
        let expect = (0xdead_beef_1234_5678u128 * 0x1000_0001u128) as u64;
        assert_eq!(a.mul(&b).to_u64(), Some(expect));
    }

    #[test]
    fn wide_mul() {
        let a = v(128, u64::MAX);
        let r = a.mul(&v(128, 2));
        assert_eq!(r.avals()[0], u64::MAX - 1);
        assert_eq!(r.avals()[1], 1);
    }

    #[test]
    fn div_rem_narrow_and_wide() {
        assert_eq!(v(8, 100).div(&v(8, 7)).to_u64(), Some(14));
        assert_eq!(v(8, 100).rem(&v(8, 7)).to_u64(), Some(2));
        let a = v(128, 1_000_000_007);
        assert_eq!(a.div(&v(128, 13)).to_u64(), Some(1_000_000_007 / 13));
        assert_eq!(a.rem(&v(128, 13)).to_u64(), Some(1_000_000_007 % 13));
    }

    #[test]
    fn div_by_zero_is_x() {
        assert!(v(8, 3).div(&v(8, 0)).has_unknown());
        assert!(v(8, 3).rem(&v(8, 0)).has_unknown());
    }

    #[test]
    fn shifts() {
        assert_eq!(v(8, 0b0001_0110).shl(2).to_u64(), Some(0b0101_1000));
        assert_eq!(v(8, 0b0001_0110).lshr(2).to_u64(), Some(0b0000_0101));
        assert_eq!(v(8, 0x96).ashr(4).to_u64(), Some(0xf9));
        assert_eq!(v(8, 0x16).ashr(4).to_u64(), Some(0x01));
        assert_eq!(v(8, 1).shl(8).to_u64(), Some(0));
        assert_eq!(v(8, 0x80).lshr(9).to_u64(), Some(0));
    }

    #[test]
    fn wide_shifts_cross_words() {
        let a = v(128, 1).shl(100);
        assert_eq!(a.avals()[1], 1u64 << 36);
        assert_eq!(a.lshr(100).to_u64(), Some(1));
        let b = v(192, 0xffff).shl(64);
        assert_eq!(b.avals()[0], 0);
        assert_eq!(b.avals()[1], 0xffff);
    }

    #[test]
    fn shift_by_unknown_amount_is_x() {
        let amt = LogicVec::new_x(3);
        assert!(v(8, 1).shl_vec(&amt).has_unknown());
        assert!(v(8, 1).lshr_vec(&amt).has_unknown());
    }

    #[test]
    fn equality_operators() {
        assert_eq!(v(8, 5).logic_eq(&v(8, 5)), LogicBit::One);
        assert_eq!(v(8, 5).logic_eq(&v(8, 6)), LogicBit::Zero);
        assert_eq!(v(8, 5).logic_ne(&v(8, 6)), LogicBit::One);
        let x = LogicVec::new_x(8);
        assert_eq!(v(8, 5).logic_eq(&x), LogicBit::X);
        assert!(x.case_eq(&LogicVec::new_x(8)));
        assert!(!x.case_eq(&v(8, 5)));
    }

    #[test]
    fn casez_wildcards() {
        let pat = LogicVec::parse_literal("4'b1?0?").unwrap();
        assert!(v(4, 0b1000).casez_match(&pat));
        assert!(v(4, 0b1101).casez_match(&pat));
        assert!(!v(4, 0b0101).casez_match(&pat));
        assert!(!v(4, 0b1110).casez_match(&pat));
    }

    #[test]
    fn unsigned_compares() {
        assert_eq!(v(8, 3).lt(&v(8, 5)), LogicBit::One);
        assert_eq!(v(8, 5).lt(&v(8, 3)), LogicBit::Zero);
        assert_eq!(v(8, 5).le(&v(8, 5)), LogicBit::One);
        assert_eq!(v(8, 5).ge(&v(8, 6)), LogicBit::Zero);
        assert_eq!(v(8, 7).gt(&v(8, 6)), LogicBit::One);
        assert_eq!(v(8, 3).lt(&LogicVec::new_x(8)), LogicBit::X);
    }

    #[test]
    fn wide_compare() {
        let big = v(128, 1).shl(100);
        assert_eq!(v(128, u64::MAX).lt(&big), LogicBit::One);
        assert_eq!(big.gt(&v(128, u64::MAX)), LogicBit::One);
    }

    #[test]
    fn reductions() {
        assert_eq!(v(4, 0xf).red_and(), LogicBit::One);
        assert_eq!(v(4, 0x7).red_and(), LogicBit::Zero);
        assert_eq!(v(4, 0x0).red_or(), LogicBit::Zero);
        assert_eq!(v(4, 0x2).red_or(), LogicBit::One);
        assert_eq!(v(4, 0x3).red_xor(), LogicBit::Zero);
        assert_eq!(v(4, 0x7).red_xor(), LogicBit::One);
        let mut partial = v(4, 0x7);
        partial.set_bit(3, LogicBit::X);
        assert_eq!(partial.red_and(), LogicBit::X);
        assert_eq!(partial.red_or(), LogicBit::One); // has a defined 1
        assert_eq!(partial.red_xor(), LogicBit::X);
        let mut zx = v(4, 0);
        zx.set_bit(1, LogicBit::X);
        assert_eq!(zx.red_or(), LogicBit::X);
        assert_eq!(zx.red_and(), LogicBit::Zero);
    }

    #[test]
    fn truthiness() {
        assert_eq!(v(8, 0).truth(), LogicBit::Zero);
        assert_eq!(v(8, 4).truth(), LogicBit::One);
        let mut m = v(8, 0);
        m.set_bit(7, LogicBit::X);
        assert_eq!(m.truth(), LogicBit::X);
        m.set_bit(0, LogicBit::One);
        assert_eq!(m.truth(), LogicBit::One);
    }

    #[test]
    fn merge_x_agreeing_bits_survive() {
        let a = v(4, 0b1010);
        let b = v(4, 0b1001);
        let m = a.merge_x(&b);
        assert_eq!(m.bit(3), LogicBit::One);
        assert_eq!(m.bit(2), LogicBit::Zero);
        assert_eq!(m.bit(1), LogicBit::X);
        assert_eq!(m.bit(0), LogicBit::X);
    }
}
