//! Formatting of [`LogicVec`] values.

use crate::{LogicBit, LogicVec};
use std::fmt;

impl fmt::Display for LogicVec {
    /// Formats as a Verilog literal: hex when the width is a multiple of 4
    /// and every hex digit is uniform (`16'hbeef`, `8'hxx`), binary
    /// otherwise (`4'b10x1`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width().is_multiple_of(4) {
            if let Some(hex) = self.try_hex_digits() {
                return write!(f, "{}'h{}", self.width(), hex);
            }
        }
        write!(f, "{}'b", self.width())?;
        for i in (0..self.width()).rev() {
            write!(f, "{}", self.bit(i).to_char())?;
        }
        Ok(())
    }
}

impl fmt::Debug for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogicVec({self})")
    }
}

impl fmt::LowerHex for LogicVec {
    /// Hex digits only (no width prefix); digits mixing defined and unknown
    /// bits print as `X`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width().div_ceil(4)).rev() {
            match self.hex_digit(i) {
                Some(c) => write!(f, "{c}")?,
                None => write!(f, "X")?,
            }
        }
        Ok(())
    }
}

impl fmt::Binary for LogicVec {
    /// Bit characters only (no width prefix), MSB first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width()).rev() {
            write!(f, "{}", self.bit(i).to_char())?;
        }
        Ok(())
    }
}

impl LogicVec {
    /// The hex digit covering bits `4i..4i+4`, or `None` if the nibble mixes
    /// defined and unknown bits. A uniform `x`/`z` nibble yields `x`/`z`.
    fn hex_digit(&self, i: u32) -> Option<char> {
        let bits: Vec<LogicBit> = (4 * i..(4 * i + 4).min(self.width()))
            .map(|p| self.bit(p))
            .collect();
        if bits.iter().all(|b| *b == LogicBit::X) {
            return Some('x');
        }
        if bits.iter().all(|b| *b == LogicBit::Z) {
            return Some('z');
        }
        if bits.iter().all(|b| b.is_defined()) {
            let mut val = 0u32;
            for (k, b) in bits.iter().enumerate() {
                if *b == LogicBit::One {
                    val |= 1 << k;
                }
            }
            return char::from_digit(val, 16);
        }
        None
    }

    /// All hex digits if each nibble is uniform, MSB first.
    fn try_hex_digits(&self) -> Option<String> {
        let n = self.width().div_ceil(4);
        let mut out = String::with_capacity(n as usize);
        for i in (0..n).rev() {
            out.push(self.hex_digit(i)?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::LogicVec;

    #[test]
    fn display_hex_when_clean() {
        assert_eq!(LogicVec::from_u64(16, 0xbeef).to_string(), "16'hbeef");
        assert_eq!(LogicVec::new_x(8).to_string(), "8'hxx");
    }

    #[test]
    fn display_binary_when_mixed() {
        let v = LogicVec::parse_literal("4'b10x1").unwrap();
        assert_eq!(v.to_string(), "4'b10x1");
    }

    #[test]
    fn display_binary_for_odd_width() {
        let v = LogicVec::from_u64(3, 0b101);
        assert_eq!(v.to_string(), "3'b101");
    }

    #[test]
    fn lower_hex_marks_mixed_nibbles() {
        let v = LogicVec::parse_literal("8'b1010_1x00").unwrap();
        assert_eq!(format!("{v:x}"), "aX");
    }

    #[test]
    fn binary_format() {
        let v = LogicVec::parse_literal("4'b10z1").unwrap();
        assert_eq!(format!("{v:b}"), "10z1");
    }

    #[test]
    fn debug_includes_value() {
        let v = LogicVec::from_u64(4, 5);
        assert_eq!(format!("{v:?}"), "LogicVec(4'h5)");
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for s in ["16'hbeef", "4'b10x1", "8'hzz", "12'habc"] {
            let v = LogicVec::parse_literal(s).unwrap();
            let again = LogicVec::parse_literal(&v.to_string()).unwrap();
            assert_eq!(v, again, "{s}");
        }
    }
}
