//! Bit-sliced lane planes for 64-wide fault batching (PPSFP).
//!
//! A [`LanePlanes`] holds one value per *lane* for up to [`LANES`] parallel
//! fault machines, stored transposed: word `j` of the `a`/`b` plane holds
//! bit `j` of **every** lane's value, with lane `i` in bit position `i` of
//! the word. Because every four-state word formula in this workspace is
//! bitwise across bit positions, the same formulas applied word-by-word
//! over a `LanePlanes` compute all 64 lanes at once — the PPSFP trick
//! lifted from the gate level to the ≤ 64-bit RTL plane.
//!
//! The encoding per (lane, bit) is the same VPI-style `(aval, bval)` pair
//! as [`LogicVec`]: `00 = 0`, `10 = 1`, `01 = Z`, `11 = X`. There is no
//! width normalization *across lanes* — all lanes share the plane's width —
//! and [`LanePlanes::word`] reads `(0, 0)` beyond the width, mirroring the
//! [`LogicVec`] invariant that bits at positions `>= width` are `(0, 0)`
//! (so zero-extension of narrower operands is free).

use crate::vec::LogicVec;

/// Number of parallel lanes in a [`LanePlanes`] (one 64-bit word).
pub const LANES: u32 = 64;

/// In-place 64×64 bit-matrix transpose: afterwards bit `i` of `m[j]` is
/// bit `j` of the old `m[i]`. O(64·log 64) word operations via masked
/// block swaps (Hacker's Delight §7-3), and its own inverse — this is
/// what makes whole-plane lane loads and stores word-level instead of
/// bit-level.
fn transpose64(m: &mut [u64; 64]) {
    let mut j = 32u32;
    let mut mask = 0xFFFF_FFFF_0000_0000u64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            for r in k..k + j as usize {
                let rj = r + j as usize;
                let t = (m[r] ^ (m[rj] << j)) & mask;
                m[r] ^= t;
                m[rj] ^= t >> j;
            }
            k += 2 * j as usize;
        }
        j >>= 1;
        if j != 0 {
            mask ^= mask >> j;
        }
    }
}

/// A transposed plane of up to [`LANES`] same-width values (width ≤ 64).
///
/// Buffers keep their capacity across [`LanePlanes::reset`] /
/// [`LanePlanes::broadcast`] calls, so a pooled instance is allocation-free
/// in steady state.
#[derive(Debug, Clone, Default)]
pub struct LanePlanes {
    width: u32,
    /// `a[j]` bit `i` = aval of bit `j` of lane `i`'s value.
    a: Vec<u64>,
    /// `b[j]` bit `i` = bval of bit `j` of lane `i`'s value.
    b: Vec<u64>,
}

impl LanePlanes {
    /// Creates an empty plane (width 0; call [`LanePlanes::reset`] or
    /// [`LanePlanes::broadcast`] before use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Reshapes to `width` bit positions with every lane all-zero,
    /// preserving buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    pub fn reset(&mut self, width: u32) {
        assert!(
            (1..=64).contains(&width),
            "LanePlanes width must be in 1..=64, got {width}"
        );
        self.width = width;
        self.a.clear();
        self.a.resize(width as usize, 0);
        self.b.clear();
        self.b.resize(width as usize, 0);
    }

    /// The shared lane value width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Plane words for bit position `j`; `(0, 0)` beyond the width (every
    /// lane reads `0` there — free zero-extension).
    #[inline]
    pub fn word(&self, j: u32) -> (u64, u64) {
        if j < self.width {
            (self.a[j as usize], self.b[j as usize])
        } else {
            (0, 0)
        }
    }

    /// Overwrites the plane words for bit position `j` (must be in range).
    #[inline]
    pub fn set_word(&mut self, j: u32, a: u64, b: u64) {
        debug_assert!(j < self.width);
        self.a[j as usize] = a;
        self.b[j as usize] = b;
    }

    /// Reshapes to `v.width()` and fills **every** lane with `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is wider than 64 bits.
    pub fn broadcast(&mut self, v: &LogicVec) {
        self.reset(v.width());
        let (va, vb) = v.word_planes();
        for j in 0..self.width {
            self.a[j as usize] = if va >> j & 1 == 1 { u64::MAX } else { 0 };
            self.b[j as usize] = if vb >> j & 1 == 1 { u64::MAX } else { 0 };
        }
    }

    /// Overwrites lane `lane` with `v` (same width as the plane).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64` or `v.width() != self.width()`.
    pub fn set_lane(&mut self, lane: u32, v: &LogicVec) {
        assert!(lane < LANES, "lane {lane} out of range");
        assert_eq!(v.width(), self.width, "lane width mismatch");
        let (va, vb) = v.word_planes();
        let mask = 1u64 << lane;
        for j in 0..self.width {
            let ji = j as usize;
            self.a[ji] = (self.a[ji] & !mask) | ((va >> j & 1) << lane);
            self.b[ji] = (self.b[ji] & !mask) | ((vb >> j & 1) << lane);
        }
    }

    /// Reshapes to `width` and fills **all** 64 lanes at once from
    /// per-lane value words: `(a[i], b[i])` is lane `i`'s value as
    /// [`LogicVec::word_planes`] pairs. Equivalent to 64
    /// [`LanePlanes::set_lane`] calls but O(64·log 64) word operations
    /// total instead of O(width) bit operations per lane — the batch
    /// path's hot transpose. The input arrays are clobbered (transposed
    /// in place).
    ///
    /// Bits at positions `>= width` of each lane word must be zero (the
    /// [`LogicVec`] invariant for values of width `width`).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    pub fn load_lanes(&mut self, width: u32, a: &mut [u64; 64], b: &mut [u64; 64]) {
        self.reset(width);
        // All-zero lane words transpose to all-zero plane words, which
        // `reset` already wrote — common for the `b` plane (two-state
        // data) and for all-zero values, so the check pays for itself.
        if a.iter().any(|&w| w != 0) {
            transpose64(a);
            self.a.copy_from_slice(&a[..width as usize]);
        }
        if b.iter().any(|&w| w != 0) {
            transpose64(b);
            self.b.copy_from_slice(&b[..width as usize]);
        }
    }

    /// Gathers **all** 64 lanes at once into per-lane value words — the
    /// inverse of [`LanePlanes::load_lanes`]: afterwards `(a[i], b[i])`
    /// is lane `i`'s value with bits `>= width` zero, ready for
    /// [`LogicVec::assign_word`]. O(64·log 64) word operations instead
    /// of O(width) bit operations per [`LanePlanes::extract_lane`] call.
    pub fn store_lanes(&self, a: &mut [u64; 64], b: &mut [u64; 64]) {
        let w = self.width as usize;
        if self.a.iter().any(|&p| p != 0) {
            a[..w].copy_from_slice(&self.a);
            a[w..].fill(0);
            transpose64(a);
        } else {
            a.fill(0);
        }
        if self.b.iter().any(|&p| p != 0) {
            b[..w].copy_from_slice(&self.b);
            b[w..].fill(0);
            transpose64(b);
        } else {
            b.fill(0);
        }
    }

    /// Gathers lane `lane`'s value into `out` (reshaped to the plane
    /// width).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn extract_lane(&self, lane: u32, out: &mut LogicVec) {
        assert!(lane < LANES, "lane {lane} out of range");
        let mut va = 0u64;
        let mut vb = 0u64;
        for j in 0..self.width {
            va |= (self.a[j as usize] >> lane & 1) << j;
            vb |= (self.b[j as usize] >> lane & 1) << j;
        }
        out.assign_word(self.width, va, vb);
    }

    /// Mask of lanes whose value differs from `reference` (a plain value,
    /// compared as if broadcast to every lane). Plane-equality is
    /// value-equality, as for [`LogicVec`].
    ///
    /// # Panics
    ///
    /// Panics if `reference.width() != self.width()`.
    pub fn lanes_differing(&self, reference: &LogicVec) -> u64 {
        assert_eq!(reference.width(), self.width, "reference width mismatch");
        let (ra, rb) = reference.word_planes();
        let mut diff = 0u64;
        for j in 0..self.width {
            let ga = if ra >> j & 1 == 1 { u64::MAX } else { 0 };
            let gb = if rb >> j & 1 == 1 { u64::MAX } else { 0 };
            diff |= (self.a[j as usize] ^ ga) | (self.b[j as usize] ^ gb);
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogicBit;

    /// Deterministic four-state value generator (no external RNG in the
    /// workspace): bit k of value i cycles through 0/1/X/Z.
    fn val(width: u32, seed: u64) -> LogicVec {
        let mut v = LogicVec::zeros(width);
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        for k in 0..width {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bit = match s >> 62 {
                0 => LogicBit::Zero,
                1 => LogicBit::One,
                2 => LogicBit::X,
                _ => LogicBit::Z,
            };
            v.set_bit(k, bit);
        }
        v
    }

    #[test]
    fn broadcast_then_extract_roundtrips() {
        for width in [1, 7, 33, 64] {
            let v = val(width, width as u64);
            let mut p = LanePlanes::new();
            p.broadcast(&v);
            let mut out = LogicVec::default();
            for lane in [0, 1, 31, 63] {
                p.extract_lane(lane, &mut out);
                assert_eq!(out, v, "width {width} lane {lane}");
            }
            assert_eq!(p.lanes_differing(&v), 0);
        }
    }

    #[test]
    fn set_lane_roundtrips_four_state_values() {
        let width = 17;
        let good = val(width, 99);
        let mut p = LanePlanes::new();
        p.broadcast(&good);
        let lanes: Vec<LogicVec> = (0..64).map(|i| val(width, i)).collect();
        for (i, v) in lanes.iter().enumerate() {
            p.set_lane(i as u32, v);
        }
        let mut out = LogicVec::default();
        for (i, v) in lanes.iter().enumerate() {
            p.extract_lane(i as u32, &mut out);
            assert_eq!(&out, v, "lane {i}");
        }
    }

    #[test]
    fn load_lanes_matches_per_lane_set_lane() {
        for width in [1, 8, 17, 33, 64] {
            let lanes: Vec<LogicVec> = (0..64).map(|i| val(width, i + 7)).collect();
            let mut reference = LanePlanes::new();
            reference.reset(width);
            for (i, v) in lanes.iter().enumerate() {
                reference.set_lane(i as u32, v);
            }
            let mut a = [0u64; 64];
            let mut b = [0u64; 64];
            for (i, v) in lanes.iter().enumerate() {
                (a[i], b[i]) = v.word_planes();
            }
            let mut fast = LanePlanes::new();
            fast.load_lanes(width, &mut a, &mut b);
            for j in 0..width {
                assert_eq!(fast.word(j), reference.word(j), "width {width} bit {j}");
            }
        }
    }

    #[test]
    fn store_lanes_matches_per_lane_extract_lane() {
        for width in [1, 8, 17, 33, 64] {
            let mut p = LanePlanes::new();
            p.broadcast(&val(width, 5));
            for i in (0..64).step_by(3) {
                p.set_lane(i, &val(width, 1000 + i as u64));
            }
            let mut a = [u64::MAX; 64];
            let mut b = [u64::MAX; 64];
            p.store_lanes(&mut a, &mut b);
            let mut out = LogicVec::default();
            for lane in 0..64 {
                p.extract_lane(lane, &mut out);
                let mut fast = LogicVec::default();
                fast.assign_word(width, a[lane as usize], b[lane as usize]);
                assert_eq!(fast, out, "width {width} lane {lane}");
            }
        }
    }

    #[test]
    fn lanes_differing_flags_exactly_the_patched_lanes() {
        let good = val(9, 3);
        let mut other = good.clone();
        other.set_bit(4, LogicBit::X);
        assert_ne!(other, good);
        let mut p = LanePlanes::new();
        p.broadcast(&good);
        p.set_lane(5, &other);
        p.set_lane(63, &other);
        // A lane re-set to the good value must not be flagged.
        p.set_lane(8, &good.clone());
        assert_eq!(p.lanes_differing(&good), (1 << 5) | (1 << 63));
    }

    #[test]
    fn word_reads_zero_beyond_width() {
        let mut p = LanePlanes::new();
        p.broadcast(&LogicVec::ones(3));
        assert_eq!(p.word(2), (u64::MAX, 0));
        assert_eq!(p.word(3), (0, 0));
        assert_eq!(p.word(63), (0, 0));
    }

    #[test]
    fn reset_preserves_capacity_and_zeroes() {
        let mut p = LanePlanes::new();
        p.broadcast(&val(64, 1));
        p.reset(5);
        assert_eq!(p.width(), 5);
        for j in 0..5 {
            assert_eq!(p.word(j), (0, 0));
        }
    }
}
