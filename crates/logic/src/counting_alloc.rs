//! A heap-allocation-counting global allocator (feature `alloc-count`).
//!
//! Used by the steady-state allocation guards and the `fig7_hotpath` report
//! binary to assert that the simulation hot path performs **zero** heap
//! allocations after warm-up. Register it in a test or binary crate root:
//!
//! ```text
//! use eraser_logic::counting_alloc::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc;
//!
//! let before = CountingAlloc::allocations();
//! hot_loop();
//! assert_eq!(CountingAlloc::allocations() - before, 0);
//! ```
//!
//! Counting uses relaxed atomics — the counters are monotone event counts,
//! not a synchronization mechanism — so the overhead per allocation is a
//! single uncontended atomic increment.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Total allocations (including reallocations) since process start.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total deallocations since process start.
    pub fn deallocations() -> u64 {
        DEALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total bytes requested from the allocator since process start.
    pub fn bytes_allocated() -> u64 {
        BYTES_ALLOCATED.load(Ordering::Relaxed)
    }
}

static TRAP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

impl CountingAlloc {
    /// Debug aid for hunting stray allocations: the next allocation (of
    /// any kind) prints a backtrace to stderr, then the trap disarms. The
    /// unarmed cost on the allocation path is a single relaxed load.
    pub fn arm_trap() {
        TRAP.store(true, Ordering::Relaxed);
    }
}

// SAFETY: delegates every operation to `System`, only adding relaxed
// counter increments; layout handling is unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRAP.load(Ordering::Relaxed) && TRAP.swap(false, Ordering::Relaxed) {
            eprintln!(
                "alloc trap ({} bytes):\n{}",
                layout.size(),
                std::backtrace::Backtrace::force_capture()
            );
        }
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRAP.load(Ordering::Relaxed) && TRAP.swap(false, Ordering::Relaxed) {
            eprintln!(
                "realloc trap ({} -> {new_size} bytes):\n{}",
                layout.size(),
                std::backtrace::Backtrace::force_capture()
            );
        }
        // A realloc is a dealloc of the old block plus an alloc of the new
        // one, so both counters move and allocations - deallocations stays
        // an accurate live-block count.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if TRAP.load(Ordering::Relaxed) && TRAP.swap(false, Ordering::Relaxed) {
            eprintln!(
                "alloc_zeroed trap ({} bytes):\n{}",
                layout.size(),
                std::backtrace::Backtrace::force_capture()
            );
        }
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}
