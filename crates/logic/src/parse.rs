//! Parsing of Verilog-style literals into [`LogicVec`].

use crate::{LogicBit, LogicVec};
use std::fmt;
use std::str::FromStr;

/// Error produced when parsing a Verilog-style literal fails.
///
/// The message is suitable for embedding in compiler diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLiteralError {
    message: String,
}

impl ParseLiteralError {
    fn new(message: impl Into<String>) -> Self {
        ParseLiteralError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseLiteralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid literal: {}", self.message)
    }
}

impl std::error::Error for ParseLiteralError {}

impl LogicVec {
    /// Parses a Verilog-style literal.
    ///
    /// Supported forms (underscores allowed between digits):
    ///
    /// * sized, based: `8'hFF`, `4'b10x0`, `12'o777`, `16'd1234`
    /// * unsized, based: `'hBEEF` (32 bits)
    /// * plain decimal: `42` (32 bits)
    ///
    /// `x`/`X` and `z`/`Z`/`?` digits are accepted in binary, octal and hex
    /// bases. If the most significant written digit is `x` or `z` the value
    /// is extended to the full width with that digit, per IEEE 1364.
    ///
    /// # Errors
    ///
    /// Returns [`ParseLiteralError`] for malformed syntax, a zero width, an
    /// unknown base letter, or digits invalid for the base.
    ///
    /// # Example
    ///
    /// ```
    /// use eraser_logic::{LogicBit, LogicVec};
    ///
    /// let v = LogicVec::parse_literal("8'hA5")?;
    /// assert_eq!(v.to_u64(), Some(0xa5));
    /// let w = LogicVec::parse_literal("4'b1x01")?;
    /// assert_eq!(w.bit(2), LogicBit::X);
    /// # Ok::<(), eraser_logic::ParseLiteralError>(())
    /// ```
    pub fn parse_literal(s: &str) -> Result<LogicVec, ParseLiteralError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseLiteralError::new("empty literal"));
        }
        match s.find('\'') {
            None => {
                // Plain decimal, 32 bits.
                let digits: String = s.chars().filter(|&c| c != '_').collect();
                let value: u64 = digits
                    .parse()
                    .map_err(|_| ParseLiteralError::new(format!("bad decimal `{s}`")))?;
                Ok(LogicVec::from_u64(32, value))
            }
            Some(tick) => {
                let width: u32 = if tick == 0 {
                    32
                } else {
                    s[..tick]
                        .trim()
                        .parse()
                        .map_err(|_| ParseLiteralError::new(format!("bad width in `{s}`")))?
                };
                if width == 0 {
                    return Err(ParseLiteralError::new(format!("zero width in `{s}`")));
                }
                let rest = &s[tick + 1..];
                let mut chars = rest.chars();
                let base = chars
                    .next()
                    .ok_or_else(|| ParseLiteralError::new(format!("missing base in `{s}`")))?;
                let digits: String = chars
                    .collect::<String>()
                    .chars()
                    .filter(|&c| c != '_' && !c.is_whitespace())
                    .collect();
                if digits.is_empty() {
                    return Err(ParseLiteralError::new(format!("missing digits in `{s}`")));
                }
                let bits_per_digit = match base.to_ascii_lowercase() {
                    'b' => 1,
                    'o' => 3,
                    'h' => 4,
                    'd' => {
                        let value: u64 = digits.parse().map_err(|_| {
                            ParseLiteralError::new(format!("bad decimal digits in `{s}`"))
                        })?;
                        return Ok(LogicVec::from_u64(width, value));
                    }
                    other => {
                        return Err(ParseLiteralError::new(format!(
                            "unknown base `{other}` in `{s}`"
                        )))
                    }
                };
                parse_based(width, bits_per_digit, &digits, s)
            }
        }
    }
}

fn parse_based(
    width: u32,
    bits_per_digit: u32,
    digits: &str,
    original: &str,
) -> Result<LogicVec, ParseLiteralError> {
    // Determine the fill for upper bits from the leading digit.
    let lead = digits.chars().next().expect("non-empty digits");
    let fill = match lead {
        'x' | 'X' => LogicBit::X,
        'z' | 'Z' | '?' => LogicBit::Z,
        _ => LogicBit::Zero,
    };
    let mut v = LogicVec::filled(width, fill);
    let mut pos = 0u32; // next LSB position to write
    for c in digits.chars().rev() {
        let digit_bits: Vec<LogicBit> = match c {
            'x' | 'X' => vec![LogicBit::X; bits_per_digit as usize],
            'z' | 'Z' | '?' => vec![LogicBit::Z; bits_per_digit as usize],
            _ => {
                let val = c.to_digit(1 << bits_per_digit).ok_or_else(|| {
                    ParseLiteralError::new(format!("digit `{c}` invalid in `{original}`"))
                })?;
                (0..bits_per_digit)
                    .map(|i| LogicBit::from(val >> i & 1 == 1))
                    .collect()
            }
        };
        for (i, &b) in digit_bits.iter().enumerate() {
            let p = pos + i as u32;
            if p < width {
                v.set_bit(p, b);
            } else if b != fill && !(b == LogicBit::Zero && fill == LogicBit::Zero) {
                // Truncating a significant bit is accepted (Verilog truncates),
                // so nothing to do; kept as an explicit branch for clarity.
            }
        }
        pos += bits_per_digit;
        if pos >= width && fill == LogicBit::Zero {
            // Remaining digits can only truncate; still validate them.
            continue;
        }
    }
    Ok(v)
}

impl FromStr for LogicVec {
    type Err = ParseLiteralError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LogicVec::parse_literal(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_decimal() {
        let v = LogicVec::parse_literal("42").unwrap();
        assert_eq!(v.width(), 32);
        assert_eq!(v.to_u64(), Some(42));
        assert_eq!(
            LogicVec::parse_literal("1_000").unwrap().to_u64(),
            Some(1000)
        );
    }

    #[test]
    fn sized_hex() {
        let v = LogicVec::parse_literal("16'hBEEF").unwrap();
        assert_eq!(v.width(), 16);
        assert_eq!(v.to_u64(), Some(0xbeef));
    }

    #[test]
    fn sized_binary_with_x() {
        let v = LogicVec::parse_literal("4'b1x0z").unwrap();
        assert_eq!(v.bit(3), LogicBit::One);
        assert_eq!(v.bit(2), LogicBit::X);
        assert_eq!(v.bit(1), LogicBit::Zero);
        assert_eq!(v.bit(0), LogicBit::Z);
    }

    #[test]
    fn sized_decimal() {
        let v = LogicVec::parse_literal("10'd1000").unwrap();
        assert_eq!(v.to_u64(), Some(1000));
        assert_eq!(v.width(), 10);
    }

    #[test]
    fn octal() {
        let v = LogicVec::parse_literal("9'o777").unwrap();
        assert_eq!(v.to_u64(), Some(0o777));
    }

    #[test]
    fn leading_x_extends() {
        let v = LogicVec::parse_literal("8'bx1").unwrap();
        assert_eq!(v.bit(0), LogicBit::One);
        for i in 2..8 {
            assert_eq!(v.bit(i), LogicBit::X, "bit {i}");
        }
    }

    #[test]
    fn leading_zero_extends_with_zero() {
        let v = LogicVec::parse_literal("8'h5").unwrap();
        assert_eq!(v.to_u64(), Some(5));
    }

    #[test]
    fn unsized_based_is_32_bits() {
        let v = LogicVec::parse_literal("'hff").unwrap();
        assert_eq!(v.width(), 32);
        assert_eq!(v.to_u64(), Some(0xff));
    }

    #[test]
    fn truncation() {
        let v = LogicVec::parse_literal("4'hff").unwrap();
        assert_eq!(v.to_u64(), Some(0xf));
    }

    #[test]
    fn underscores_everywhere() {
        let v = LogicVec::parse_literal("16'b1010_1010_1010_1010").unwrap();
        assert_eq!(v.to_u64(), Some(0xaaaa));
    }

    #[test]
    fn errors() {
        assert!(LogicVec::parse_literal("").is_err());
        assert!(LogicVec::parse_literal("8'q12").is_err());
        assert!(LogicVec::parse_literal("8'b12").is_err());
        assert!(LogicVec::parse_literal("0'b1").is_err());
        assert!(LogicVec::parse_literal("8'hxyz").is_err()); // y invalid
        assert!(LogicVec::parse_literal("abc").is_err());
        assert!(LogicVec::parse_literal("8'd1x").is_err());
    }

    #[test]
    fn from_str_trait() {
        let v: LogicVec = "8'h80".parse().unwrap();
        assert_eq!(v.to_u64(), Some(0x80));
    }
}
