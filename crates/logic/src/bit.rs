//! A single four-state logic bit.

use std::fmt;

/// A single four-state logic value: `0`, `1`, `Z` or `X`.
///
/// `Z` is high impedance (an undriven net); `X` is unknown. When a `Z` bit
/// is *read* by a logic operator it behaves as `X`, matching IEEE 1364
/// operator semantics.
///
/// # Example
///
/// ```
/// use eraser_logic::LogicBit;
///
/// assert_eq!(LogicBit::One.and(LogicBit::X), LogicBit::X);
/// assert_eq!(LogicBit::Zero.and(LogicBit::X), LogicBit::Zero);
/// assert_eq!(LogicBit::One.or(LogicBit::X), LogicBit::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum LogicBit {
    /// Logic zero.
    #[default]
    Zero,
    /// Logic one.
    One,
    /// High impedance.
    Z,
    /// Unknown.
    X,
}

impl LogicBit {
    /// The `(aval, bval)` plane encoding of this bit.
    #[inline]
    pub fn planes(self) -> (bool, bool) {
        match self {
            LogicBit::Zero => (false, false),
            LogicBit::One => (true, false),
            LogicBit::Z => (false, true),
            LogicBit::X => (true, true),
        }
    }

    /// Reconstructs a bit from its `(aval, bval)` plane encoding.
    #[inline]
    pub fn from_planes(aval: bool, bval: bool) -> Self {
        match (aval, bval) {
            (false, false) => LogicBit::Zero,
            (true, false) => LogicBit::One,
            (false, true) => LogicBit::Z,
            (true, true) => LogicBit::X,
        }
    }

    /// True if the bit is `0` or `1`.
    #[inline]
    pub fn is_defined(self) -> bool {
        matches!(self, LogicBit::Zero | LogicBit::One)
    }

    /// True if the bit is `X` or `Z`.
    #[inline]
    pub fn is_unknown(self) -> bool {
        !self.is_defined()
    }

    /// Converts to `bool` if defined.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LogicBit::Zero => Some(false),
            LogicBit::One => Some(true),
            _ => None,
        }
    }

    /// Logical negation: `!0 = 1`, `!1 = 0`, unknown otherwise.
    ///
    /// Also available through [`std::ops::Not`] (`!bit`).
    #[allow(clippy::should_implement_trait)] // `Not` is implemented below; the inherent name stays for call-chaining.
    #[inline]
    pub fn not(self) -> Self {
        match self {
            LogicBit::Zero => LogicBit::One,
            LogicBit::One => LogicBit::Zero,
            _ => LogicBit::X,
        }
    }

    /// Four-state AND: `0` dominates, otherwise unknown dominates.
    #[inline]
    pub fn and(self, rhs: Self) -> Self {
        match (self, rhs) {
            (LogicBit::Zero, _) | (_, LogicBit::Zero) => LogicBit::Zero,
            (LogicBit::One, LogicBit::One) => LogicBit::One,
            _ => LogicBit::X,
        }
    }

    /// Four-state OR: `1` dominates, otherwise unknown dominates.
    #[inline]
    pub fn or(self, rhs: Self) -> Self {
        match (self, rhs) {
            (LogicBit::One, _) | (_, LogicBit::One) => LogicBit::One,
            (LogicBit::Zero, LogicBit::Zero) => LogicBit::Zero,
            _ => LogicBit::X,
        }
    }

    /// Four-state XOR: unknown if either side is unknown.
    #[inline]
    pub fn xor(self, rhs: Self) -> Self {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => {
                if a ^ b {
                    LogicBit::One
                } else {
                    LogicBit::Zero
                }
            }
            _ => LogicBit::X,
        }
    }

    /// The character used in Verilog-style literals: `0`, `1`, `z`, `x`.
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            LogicBit::Zero => '0',
            LogicBit::One => '1',
            LogicBit::Z => 'z',
            LogicBit::X => 'x',
        }
    }

    /// Parses a literal digit character (`0`, `1`, `x`/`X`, `z`/`Z`/`?`).
    #[inline]
    pub fn from_char(c: char) -> Option<Self> {
        match c {
            '0' => Some(LogicBit::Zero),
            '1' => Some(LogicBit::One),
            'x' | 'X' => Some(LogicBit::X),
            'z' | 'Z' | '?' => Some(LogicBit::Z),
            _ => None,
        }
    }
}

impl From<bool> for LogicBit {
    #[inline]
    fn from(b: bool) -> Self {
        if b {
            LogicBit::One
        } else {
            LogicBit::Zero
        }
    }
}

impl std::ops::Not for LogicBit {
    type Output = LogicBit;

    fn not(self) -> LogicBit {
        LogicBit::not(self)
    }
}

impl fmt::Display for LogicBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_roundtrip() {
        for b in [LogicBit::Zero, LogicBit::One, LogicBit::Z, LogicBit::X] {
            let (a, bv) = b.planes();
            assert_eq!(LogicBit::from_planes(a, bv), b);
        }
    }

    #[test]
    fn and_truth_table() {
        use LogicBit::*;
        assert_eq!(Zero.and(Zero), Zero);
        assert_eq!(Zero.and(One), Zero);
        assert_eq!(Zero.and(X), Zero);
        assert_eq!(Zero.and(Z), Zero);
        assert_eq!(One.and(One), One);
        assert_eq!(One.and(X), X);
        assert_eq!(One.and(Z), X);
        assert_eq!(X.and(X), X);
        assert_eq!(Z.and(Z), X);
    }

    #[test]
    fn or_truth_table() {
        use LogicBit::*;
        assert_eq!(Zero.or(Zero), Zero);
        assert_eq!(One.or(Zero), One);
        assert_eq!(One.or(X), One);
        assert_eq!(One.or(Z), One);
        assert_eq!(Zero.or(X), X);
        assert_eq!(Zero.or(Z), X);
        assert_eq!(X.or(Z), X);
    }

    #[test]
    fn xor_truth_table() {
        use LogicBit::*;
        assert_eq!(Zero.xor(One), One);
        assert_eq!(One.xor(One), Zero);
        assert_eq!(One.xor(X), X);
        assert_eq!(Z.xor(Zero), X);
    }

    #[test]
    fn not_table() {
        use LogicBit::*;
        assert_eq!(Zero.not(), One);
        assert_eq!(One.not(), Zero);
        assert_eq!(X.not(), X);
        assert_eq!(Z.not(), X);
    }

    #[test]
    fn char_roundtrip() {
        for b in [LogicBit::Zero, LogicBit::One, LogicBit::Z, LogicBit::X] {
            assert_eq!(LogicBit::from_char(b.to_char()), Some(b));
        }
        assert_eq!(LogicBit::from_char('?'), Some(LogicBit::Z));
        assert_eq!(LogicBit::from_char('q'), None);
    }
}
