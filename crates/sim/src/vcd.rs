//! Value Change Dump (VCD) waveform output.
//!
//! Minimal IEEE 1364 §18 writer used to inspect good-simulation traces:
//! register the signals to dump, then sample once per stimulus step.

use crate::Simulator;
use eraser_ir::{Design, SignalId};
use eraser_logic::LogicVec;
use std::io::{self, Write};

/// Streams a VCD file for a chosen set of signals.
///
/// # Example
///
/// ```
/// use eraser_frontend::compile;
/// use eraser_logic::LogicVec;
/// use eraser_sim::{Simulator, VcdWriter};
///
/// let design = compile(
///     "module m(input wire clk, output reg [3:0] q);
///        always @(posedge clk) q <= q + 4'h1;
///      endmodule",
///     None,
/// )?;
/// let clk = design.find_signal("clk").unwrap();
/// let q = design.find_signal("q").unwrap();
/// let mut sim = Simulator::new(&design);
/// let mut out = Vec::new();
/// let mut vcd = VcdWriter::new(&mut out, &design, &[clk, q])?;
/// for _ in 0..3 {
///     sim.clock_cycle(clk);
///     vcd.sample(&sim)?;
/// }
/// vcd.finish()?;
/// let text = String::from_utf8(out)?;
/// assert!(text.contains("$var wire 4"));
/// assert!(text.contains("#0") && text.contains("#3"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct VcdWriter<'d, W: Write> {
    out: W,
    design: &'d Design,
    signals: Vec<SignalId>,
    codes: Vec<String>,
    last: Vec<Option<LogicVec>>,
    time: u64,
}

impl<'d, W: Write> VcdWriter<'d, W> {
    /// Writes the VCD header declaring `signals` and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut out: W, design: &'d Design, signals: &[SignalId]) -> io::Result<Self> {
        writeln!(out, "$version eraser RTL fault simulator $end")?;
        writeln!(out, "$timescale 1ns $end")?;
        writeln!(out, "$scope module {} $end", design.name())?;
        let mut codes = Vec::with_capacity(signals.len());
        for (i, &sig) in signals.iter().enumerate() {
            let code = id_code(i);
            let s = design.signal(sig);
            // Dots are not legal in VCD identifiers; flatten hierarchy.
            let name = s.name.replace('.', "_");
            writeln!(out, "$var wire {} {} {} $end", s.width, code, name)?;
            codes.push(code);
        }
        writeln!(out, "$upscope $end")?;
        writeln!(out, "$enddefinitions $end")?;
        Ok(VcdWriter {
            out,
            design,
            signals: signals.to_vec(),
            codes,
            last: vec![None; signals.len()],
            time: 0,
        })
    }

    /// Emits a timestep with every changed signal's new value.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn sample(&mut self, sim: &Simulator<'_>) -> io::Result<()> {
        let mut header_written = false;
        for (i, &sig) in self.signals.iter().enumerate() {
            let cur = sim.value(sig);
            if self.last[i].as_ref() == Some(cur) {
                continue;
            }
            if !header_written {
                writeln!(self.out, "#{}", self.time)?;
                header_written = true;
            }
            let width = self.design.signal(sig).width;
            if width == 1 {
                writeln!(self.out, "{}{}", cur.bit(0).to_char(), self.codes[i])?;
            } else {
                writeln!(self.out, "b{:b} {}", cur, self.codes[i])?;
            }
            self.last[i] = Some(cur.clone());
        }
        self.time += 1;
        Ok(())
    }

    /// Writes the final timestamp and flushes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<()> {
        writeln!(self.out, "#{}", self.time)?;
        self.out.flush()
    }
}

/// VCD short identifier codes: `!`, `"`, ..., then two characters.
fn id_code(index: usize) -> String {
    const FIRST: u8 = b'!';
    const COUNT: usize = (b'~' - b'!' + 1) as usize;
    let mut s = String::new();
    let mut i = index;
    loop {
        s.push((FIRST + (i % COUNT) as u8) as char);
        i /= COUNT;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use eraser_frontend::compile;

    #[test]
    fn id_codes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..5000 {
            assert!(seen.insert(id_code(i)), "duplicate at {i}");
        }
        assert_eq!(id_code(0), "!");
    }

    #[test]
    fn writes_header_and_changes() {
        let design = compile(
            "module m(input wire clk, input wire rst, output reg [7:0] q);
               always @(posedge clk) begin
                 if (rst) q <= 8'h00; else q <= q + 8'h01;
               end
             endmodule",
            None,
        )
        .unwrap();
        let clk = design.find_signal("clk").unwrap();
        let rst = design.find_signal("rst").unwrap();
        let q = design.find_signal("q").unwrap();
        let mut sim = Simulator::new(&design);
        let mut buf = Vec::new();
        let mut vcd = VcdWriter::new(&mut buf, &design, &[clk, rst, q]).unwrap();
        sim.set_input(rst, &LogicVec::from_u64(1, 1));
        sim.clock_cycle(clk);
        vcd.sample(&sim).unwrap();
        sim.set_input(rst, &LogicVec::from_u64(1, 0));
        for _ in 0..2 {
            sim.clock_cycle(clk);
            vcd.sample(&sim).unwrap();
        }
        vcd.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("$var wire 1 ! clk $end"));
        assert!(text.contains("$var wire 8"));
        assert!(text.contains("$enddefinitions $end"));
        assert!(text.contains("b00000000"), "{text}");
        assert!(text.contains("b00000010"), "{text}");
        // Unchanged signals are not re-emitted.
        assert_eq!(text.matches("1!").count(), 1, "{text}");
    }
}
