//! Dense per-signal value storage.

use eraser_ir::{Design, SignalId, ValueSource};
use eraser_logic::LogicVec;

/// The current four-state value of every signal in a design.
///
/// Freshly created stores hold all-`X` values (the power-on state of an
/// event-driven simulator).
#[derive(Debug, Clone, PartialEq)]
pub struct ValueStore {
    values: Vec<LogicVec>,
}

impl ValueStore {
    /// Creates a store with every signal at all-`X`.
    pub fn new(design: &Design) -> Self {
        ValueStore {
            values: design
                .signals()
                .iter()
                .map(|s| LogicVec::new_x(s.width))
                .collect(),
        }
    }

    /// The value of `sig`.
    ///
    /// # Panics
    ///
    /// Panics if `sig` is out of range for the design this store was built
    /// for.
    #[inline]
    pub fn get(&self, sig: SignalId) -> &LogicVec {
        &self.values[sig.index()]
    }

    /// Replaces the value of `sig`, returning `true` if it changed.
    #[inline]
    pub fn set(&mut self, sig: SignalId, value: LogicVec) -> bool {
        let slot = &mut self.values[sig.index()];
        if *slot == value {
            false
        } else {
            *slot = value;
            true
        }
    }

    /// In-place commit: compares and overwrites the stored value without
    /// taking ownership, returning `true` if it changed. The slot's storage
    /// is reused, so a steady-state commit never allocates.
    #[inline]
    pub fn commit(&mut self, sig: SignalId, value: &LogicVec) -> bool {
        let slot = &mut self.values[sig.index()];
        if slot == value {
            false
        } else {
            slot.assign_from(value);
            true
        }
    }

    /// Number of signals.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the store covers no signals.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl ValueSource for ValueStore {
    fn value(&self, sig: SignalId) -> &LogicVec {
        &self.values[sig.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eraser_ir::{DesignBuilder, PortDir};

    #[test]
    fn starts_all_x_and_tracks_changes() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_port("a", 8, PortDir::Input);
        let d = b.finish().unwrap();
        let mut store = ValueStore::new(&d);
        assert!(store.get(a).has_unknown());
        assert!(store.set(a, LogicVec::from_u64(8, 5)));
        assert!(!store.set(a, LogicVec::from_u64(8, 5)));
        assert_eq!(store.get(a).to_u64(), Some(5));
        assert_eq!(store.len(), 1);
    }
}
