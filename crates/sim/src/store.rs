//! Dense per-signal value storage.

use eraser_ir::{Design, SignalId, ValueSource};
use eraser_logic::LogicVec;

/// The current four-state value of every signal in a design.
///
/// Freshly created stores hold all-`X` values (the power-on state of an
/// event-driven simulator).
#[derive(Debug, Clone, PartialEq)]
pub struct ValueStore {
    values: Vec<LogicVec>,
}

impl ValueStore {
    /// Creates a store with every signal at all-`X`.
    pub fn new(design: &Design) -> Self {
        ValueStore {
            values: design
                .signals()
                .iter()
                .map(|s| LogicVec::new_x(s.width))
                .collect(),
        }
    }

    /// The value of `sig`.
    ///
    /// # Panics
    ///
    /// Panics if `sig` is out of range for the design this store was built
    /// for.
    #[inline]
    pub fn get(&self, sig: SignalId) -> &LogicVec {
        &self.values[sig.index()]
    }

    /// Replaces the value of `sig`, returning `true` if it changed.
    #[inline]
    pub fn set(&mut self, sig: SignalId, value: LogicVec) -> bool {
        let slot = &mut self.values[sig.index()];
        if *slot == value {
            false
        } else {
            *slot = value;
            true
        }
    }

    /// In-place commit: compares and overwrites the stored value without
    /// taking ownership, returning `true` if it changed. The slot's storage
    /// is reused, so a steady-state commit never allocates.
    #[inline]
    pub fn commit(&mut self, sig: SignalId, value: &LogicVec) -> bool {
        let slot = &mut self.values[sig.index()];
        if slot == value {
            false
        } else {
            slot.assign_from(value);
            true
        }
    }

    /// All values, indexed by signal id — the snapshot/capture view.
    pub fn as_slice(&self) -> &[LogicVec] {
        &self.values
    }

    /// Overwrites every slot from `vals` in place, reusing each slot's
    /// storage (the snapshot-restore path; zero allocations for inline
    /// widths).
    ///
    /// # Panics
    ///
    /// Panics if `vals` covers a different number of signals.
    pub fn restore_from_slice(&mut self, vals: &[LogicVec]) {
        assert_eq!(
            self.values.len(),
            vals.len(),
            "snapshot covers a different design"
        );
        for (slot, v) in self.values.iter_mut().zip(vals) {
            slot.assign_from(v);
        }
    }

    /// True if every signal's value is fully defined (no `X`/`Z` bits).
    pub fn fully_defined(&self) -> bool {
        self.values.iter().all(|v| !v.has_unknown())
    }

    /// Number of signals.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the store covers no signals.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl ValueSource for ValueStore {
    fn value(&self, sig: SignalId) -> &LogicVec {
        &self.values[sig.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eraser_ir::{DesignBuilder, PortDir};

    #[test]
    fn starts_all_x_and_tracks_changes() {
        let mut b = DesignBuilder::new("t");
        let a = b.add_port("a", 8, PortDir::Input);
        let d = b.finish().unwrap();
        let mut store = ValueStore::new(&d);
        assert!(store.get(a).has_unknown());
        assert!(store.set(a, LogicVec::from_u64(8, 5)));
        assert!(!store.set(a, LogicVec::from_u64(8, 5)));
        assert_eq!(store.get(a).to_u64(), Some(5));
        assert_eq!(store.len(), 1);
    }
}
