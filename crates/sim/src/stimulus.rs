//! Cycle-stepped input stimuli shared by all simulation engines.

use eraser_ir::SignalId;
use eraser_logic::LogicVec;

/// A deterministic input waveform: per settle-step, the list of input
/// changes to apply.
///
/// Every engine (good simulation, ERASER, every baseline) replays the same
/// `Stimulus`, which is what makes fault-coverage parity checks meaningful.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Stimulus {
    /// One entry per settle step; each entry is the set of `(input, value)`
    /// changes applied before settling.
    pub steps: Vec<Vec<(SignalId, LogicVec)>>,
}

impl Stimulus {
    /// Number of settle steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of clock cycles if built with
    /// [`StimulusBuilder::add_cycle`] (two steps per cycle).
    pub fn num_cycles(&self) -> usize {
        self.steps.len() / 2
    }
}

/// Builder for [`Stimulus`] waveforms.
///
/// # Example
///
/// ```
/// use eraser_ir::SignalId;
/// use eraser_logic::LogicVec;
/// use eraser_sim::StimulusBuilder;
///
/// let clk = SignalId(0);
/// let data = SignalId(1);
/// let mut b = StimulusBuilder::new();
/// for i in 0..4 {
///     b.add_cycle(clk, &[(data, LogicVec::from_u64(8, i))]);
/// }
/// let stim = b.finish();
/// assert_eq!(stim.num_cycles(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StimulusBuilder {
    steps: Vec<Vec<(SignalId, LogicVec)>>,
}

impl StimulusBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a raw settle step applying `changes`.
    pub fn add_step(&mut self, changes: Vec<(SignalId, LogicVec)>) -> &mut Self {
        self.steps.push(changes);
        self
    }

    /// Appends one full clock cycle: a step driving `clk` low together with
    /// `changes`, then a step driving `clk` high (the rising edge samples
    /// the new inputs).
    pub fn add_cycle(&mut self, clk: SignalId, changes: &[(SignalId, LogicVec)]) -> &mut Self {
        let mut low: Vec<(SignalId, LogicVec)> = vec![(clk, LogicVec::from_u64(1, 0))];
        low.extend(changes.iter().cloned());
        self.steps.push(low);
        self.steps.push(vec![(clk, LogicVec::from_u64(1, 1))]);
        self
    }

    /// Finalizes the stimulus.
    pub fn finish(self) -> Stimulus {
        Stimulus { steps: self.steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_count() {
        let clk = SignalId(0);
        let mut b = StimulusBuilder::new();
        b.add_cycle(clk, &[]);
        b.add_cycle(clk, &[(SignalId(1), LogicVec::from_u64(4, 2))]);
        let s = b.finish();
        assert_eq!(s.num_steps(), 4);
        assert_eq!(s.num_cycles(), 2);
        assert_eq!(s.steps[2].len(), 2);
    }
}
