//! Event-driven RTL simulation kernel and good (fault-free) simulator.
//!
//! This crate provides the execution machinery shared by every engine in the
//! ERASER framework:
//!
//! * [`ValueStore`] — dense per-signal four-state value storage,
//! * [`eval_rtl_op`] — evaluation of primitive RTL nodes,
//! * [`execute_behavioral`] — the behavioral interpreter, which can record
//!   the **execution trace** (path decisions taken and dependency segments
//!   visited) that the ERASER implicit-redundancy check walks,
//! * [`Simulator`] — the event-driven good simulator: delta cycles,
//!   combinational propagation, *deferred* edge detection (event nodes are
//!   evaluated only after the active region settles — the discipline whose
//!   concurrent-simulation analogue prevents the paper's "fake events"),
//!   and a non-blocking-assignment commit region,
//! * [`Stimulus`] — a cycle-stepped input waveform shared by all engines,
//! * [`SimSnapshot`] / [`ReplaySim`] — settle-point state capture/restore
//!   for checkpointed good-state replay, and [`SiteProbe`] — the
//!   commit-granular activation/hazard recorder behind fault
//!   activation-window analysis.
//!
//! # Example
//!
//! ```
//! use eraser_frontend::compile;
//! use eraser_logic::LogicVec;
//! use eraser_sim::Simulator;
//!
//! let design = compile(
//!     "module counter(input wire clk, input wire rst, output reg [7:0] q);
//!        always @(posedge clk) begin
//!          if (rst) q <= 8'h00; else q <= q + 8'h01;
//!        end
//!      endmodule",
//!     None,
//! )?;
//! let clk = design.find_signal("clk").unwrap();
//! let rst = design.find_signal("rst").unwrap();
//! let q = design.find_signal("q").unwrap();
//! let mut sim = Simulator::new(&design);
//! sim.set_input(rst, &LogicVec::from_u64(1, 1));
//! sim.clock_cycle(clk);
//! sim.set_input(rst, &LogicVec::from_u64(1, 0));
//! for _ in 0..5 {
//!     sim.clock_cycle(clk);
//! }
//! assert_eq!(sim.value(q).to_u64(), Some(5));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod interp;
mod kernel;
mod probe;
mod rtl_eval;
mod snapshot;
mod stimulus;
mod store;
mod vcd;

pub use interp::{
    execute_behavioral, execute_into, execute_monitored, execute_tape_into, ExecCtx, ExecMonitor,
    ExecOutcome, ExecTrace, NoopMonitor, OverlayView, SlotWrite, TraceEvent, TraceMonitor,
};
pub use kernel::Simulator;
pub use probe::{BitFirsts, ProbeMonitor, SiteProbe, NEVER};
pub use rtl_eval::{eval_rtl_node, eval_rtl_node_into, eval_rtl_op, eval_rtl_op_with};
pub use snapshot::{assign_logic_slice, ReplaySim, SimSnapshot};
pub use stimulus::{Stimulus, StimulusBuilder};
pub use store::ValueStore;
pub use vcd::VcdWriter;
