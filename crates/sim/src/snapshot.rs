//! Settle-point simulator snapshots — the substrate of checkpointed
//! good-state replay.
//!
//! A [`SimSnapshot`] captures the complete observable state of a simulator
//! at a *settle point* (after [`Simulator::step`](crate::Simulator::step)
//! returns): the full value store — which includes behavioral locals, since
//! locals are ordinary signals — the edge-detection latches, the active
//! force set and the delta counter. At a settle point every kernel
//! scheduling structure (RTL/behavioral work queues, the NBA queue, the
//! watch list) is provably empty, so the snapshot re-establishes the
//! quiescent scheduling state on restore instead of storing empty vectors;
//! [`Simulator::capture_into`](crate::Simulator) asserts this invariant.
//!
//! Snapshots are **reusable buffers**: capturing into an existing snapshot
//! of the same design overwrites the stored `LogicVec`s in place, so a
//! checkpointing campaign allocates once per checkpoint slot and then
//! recaptures/restores with zero steady-state heap traffic (on designs
//! whose signals fit the inline representation).
//!
//! [`ReplaySim`] is the engine-facing trait: both the event-driven
//! [`Simulator`](crate::Simulator) and the levelized `CompiledSim` in
//! `eraser-baselines` implement it, which is what lets one checkpointed
//! serial campaign scheduler drive either baseline.

use crate::probe::SiteProbe;
use eraser_ir::SignalId;
use eraser_logic::{LogicBit, LogicVec};

/// A captured settle-point state of a simulator. See the [module
/// docs](self) for the capture discipline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimSnapshot {
    /// Every signal's value, indexed by signal id (includes behavioral
    /// locals — they are ordinary signals in the store).
    pub values: Vec<LogicVec>,
    /// Edge-detection latches: the last settled value of every signal, as
    /// seen by deferred edge detection.
    pub edge_prev: Vec<LogicVec>,
    /// Active forces (`(signal, bit, value)`), re-applied on every write.
    pub forces: Vec<(SignalId, u32, LogicBit)>,
    /// Delta cycles executed up to the capture point.
    pub deltas: u64,
}

impl SimSnapshot {
    /// Creates an empty snapshot (filled by the first capture).
    pub fn new() -> Self {
        Self::default()
    }

    /// True if nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Overwrites `dst` with `src` in place, reusing every existing `LogicVec`
/// allocation when the lengths match (the steady-state recapture path).
pub fn assign_logic_slice(dst: &mut Vec<LogicVec>, src: &[LogicVec]) {
    if dst.len() == src.len() {
        for (d, s) in dst.iter_mut().zip(src) {
            d.assign_from(s);
        }
    } else {
        dst.clear();
        dst.extend(src.iter().cloned());
    }
}

/// A fault-simulation replay substrate: a simulator that can be
/// checkpointed at settle points, restored, forced, instrumented with a
/// [`SiteProbe`] and stepped through a stimulus.
///
/// Implemented by the event-driven [`Simulator`](crate::Simulator) (the
/// IFsim substrate) and by `CompiledSim` in `eraser-baselines` (the VFsim
/// substrate), so the checkpointed serial campaign scheduler is written
/// once against this trait.
pub trait ReplaySim {
    /// Captures the current settle-point state into `snap`, reusing its
    /// buffers.
    ///
    /// # Panics
    ///
    /// May panic if the simulator is not at a settle point (pending queued
    /// work) — snapshots are defined at settle points only.
    fn capture_into(&self, snap: &mut SimSnapshot);

    /// Restores a previously captured state, discarding all current state
    /// (values, latches, forces, pending work).
    fn restore_from(&mut self, snap: &SimSnapshot);

    /// Applies one stimulus step's input changes and settles the design.
    fn replay_step(&mut self, changes: &[(SignalId, LogicVec)]);

    /// The current value of a signal, by borrow.
    fn signal_value(&self, sig: SignalId) -> &LogicVec;

    /// Permanently forces one bit of a signal (stuck-at injection) and
    /// settles the effect.
    fn force_bit(&mut self, sig: SignalId, bit: u32, value: LogicBit);

    /// Attaches an activation probe; the probe immediately observes the
    /// current state (its step-0 baseline), then every subsequent commit,
    /// decision and edge hazard until taken back.
    fn attach_probe(&mut self, probe: SiteProbe);

    /// Detaches and returns the probe, if one is attached.
    fn take_probe(&mut self) -> Option<SiteProbe>;

    /// Tells the attached probe (if any) which stimulus step subsequent
    /// observations belong to.
    fn begin_probe_step(&mut self, step: usize);

    /// True if every signal's current value is fully defined (no `X`/`Z`
    /// anywhere) — the eligibility condition for restarting
    /// refinement-dormant faults from this state.
    fn fully_defined(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_reuses_matching_buffers() {
        let src = vec![LogicVec::from_u64(8, 3), LogicVec::from_u64(4, 1)];
        let mut dst = vec![LogicVec::from_u64(8, 9), LogicVec::from_u64(4, 0)];
        assign_logic_slice(&mut dst, &src);
        assert_eq!(dst, src);
        // Length mismatch rebuilds.
        let mut short = vec![LogicVec::from_u64(8, 9)];
        assign_logic_slice(&mut short, &src);
        assert_eq!(short, src);
    }

    #[test]
    fn empty_snapshot() {
        let s = SimSnapshot::new();
        assert!(s.is_empty());
        assert_eq!(s.deltas, 0);
    }
}
