//! The behavioral interpreter.
//!
//! Executes one activation of a behavioral node against an arbitrary
//! [`ValueSource`] — the good simulator passes its value store, the ERASER
//! engine passes a *fault view* (diff entries overlaid on good values).
//!
//! Branch outcomes are computed through the VDG's
//! [`DecisionEval`](eraser_ir::DecisionEval) payloads — the same `Evaluate`
//! functions the implicit-redundancy check replays under fault values, so
//! execution and redundancy detection can never disagree.
//!
//! An [`ExecMonitor`] observes the execution path as it unfolds: every path
//! decision (with its outcome) and every dependency segment, together with
//! the current blocking-write overlay. The ERASER engine's Algorithm 1
//! implementation is such a monitor: it checks, per candidate fault and *at
//! the good execution's own pace*, whether the fault's values would flip a
//! decision or feed a visible difference into an executed segment. Running
//! the check inside the execution (rather than on a recorded trace) is what
//! makes it sound in the presence of blocking-assigned locals, e.g. loop
//! variables: at any point where a candidate fault is still
//! possibly-redundant, its locals provably equal the good execution's
//! locals, so the monitor can evaluate decisions with "overlay for locals,
//! fault view for committed state".

use eraser_ir::{
    eval_expr_into, run_tape, BehavioralNode, BehavioralTapes, DecisionId, Design, EvalScratch,
    EvalTape, Expr, LValue, SegmentId, SignalId, Stmt, TapeScratch, ValueSource, Vdg,
};
use eraser_logic::LogicVec;

/// Iteration bound for `for` loops (defense against malformed designs).
const MAX_LOOP_ITERATIONS: u32 = 1 << 16;

/// One resolved write produced by an execution.
///
/// Dynamic indices are resolved at execution time, so a write is always a
/// concrete (possibly partial) bit range of a target signal.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotWrite {
    /// Target signal.
    pub target: SignalId,
    /// `Some((lo, width))` for a partial write, `None` for the full signal.
    pub range: Option<(u32, u32)>,
    /// The written value (already sized to the range/signal width).
    pub value: LogicVec,
}

impl SlotWrite {
    /// Applies this write on top of `current`, returning the new value of
    /// the target signal.
    pub fn apply(&self, current: &LogicVec) -> LogicVec {
        let mut out = current.clone();
        self.apply_assign(&mut out);
        out
    }

    /// Applies this write onto `current` in place — the allocation-free
    /// form of [`SlotWrite::apply`].
    pub fn apply_assign(&self, current: &mut LogicVec) {
        match self.range {
            None => {
                let w = current.width();
                current.copy_resized(&self.value, w);
            }
            Some((lo, _w)) => current.assign_slice(lo, &self.value),
        }
    }
}

/// One event of an execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A path decision node was evaluated with the given encoded outcome.
    Decision {
        /// The decision node.
        id: DecisionId,
        /// Encoded branch outcome (see
        /// [`DecisionEval::evaluate`](eraser_ir::DecisionEval::evaluate)).
        outcome: u32,
    },
    /// A path dependency segment (one assignment) was executed.
    Segment(SegmentId),
}

/// The recorded execution path of one activation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecTrace {
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
}

/// Observer of an unfolding execution path.
///
/// `overlay` is the current blocking-write overlay (first-write order, last
/// entry wins): the execution's local state at this point in the path.
pub trait ExecMonitor {
    /// Called after each path decision is evaluated.
    fn on_decision(&mut self, id: DecisionId, outcome: u32, overlay: &[(SignalId, LogicVec)]);
    /// Called before each dependency segment (assignment) executes.
    fn on_segment(&mut self, id: SegmentId, overlay: &[(SignalId, LogicVec)]);
    /// Called after each path decision with the live resolving view
    /// (overlay-aware), so instrumentation can re-examine the decision's
    /// inputs at decision time. Default: no-op.
    fn on_decision_view(&mut self, _id: DecisionId, _view: &dyn ValueSource) {}
    /// Called when a dynamic lvalue index evaluated to an unknown value and
    /// the write was therefore skipped, with the index expression and the
    /// live resolving view. Default: no-op.
    fn on_unknown_index(&mut self, _index: &Expr, _view: &dyn ValueSource) {}
}

/// A monitor that ignores everything.
pub struct NoopMonitor;

impl ExecMonitor for NoopMonitor {
    fn on_decision(&mut self, _: DecisionId, _: u32, _: &[(SignalId, LogicVec)]) {}
    fn on_segment(&mut self, _: SegmentId, _: &[(SignalId, LogicVec)]) {}
}

/// A monitor that records the execution path as an [`ExecTrace`].
#[derive(Default)]
pub struct TraceMonitor {
    /// The trace recorded so far.
    pub trace: ExecTrace,
}

impl ExecMonitor for TraceMonitor {
    fn on_decision(&mut self, id: DecisionId, outcome: u32, _: &[(SignalId, LogicVec)]) {
        self.trace.events.push(TraceEvent::Decision { id, outcome });
    }
    fn on_segment(&mut self, id: SegmentId, _: &[(SignalId, LogicVec)]) {
        self.trace.events.push(TraceEvent::Segment(id));
    }
}

/// The result of executing one behavioral activation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecOutcome {
    /// Non-blocking writes in execution order (committed in the NBA
    /// region).
    pub nba: Vec<SlotWrite>,
    /// Blocking writes in execution order (resolved ranges), for replaying
    /// onto a fault's state.
    pub blocking_writes: Vec<SlotWrite>,
    /// Final values of blocking-written signals, in first-write order.
    pub blocking: Vec<(SignalId, LogicVec)>,
}

/// Reusable execution context: the scratch arena behavioral executions draw
/// expression temporaries from. Hold one per engine (or per worker thread)
/// and pass it to [`execute_into`] so steady-state activations never touch
/// the allocator.
#[derive(Debug, Clone, Default)]
pub struct ExecCtx {
    /// Expression-evaluation scratch arena (tree backend).
    pub scratch: EvalScratch,
    /// Tape-execution slot arena (tape backend).
    pub tape: TapeScratch,
    /// Dense per-signal index into the blocking-write overlay
    /// (`u32::MAX` = not overlaid), sized to the design on first use and
    /// cleared after every execution — signal reads during a body resolve
    /// locals in O(1) instead of scanning the overlay list.
    overlay_map: Vec<u32>,
}

impl ExecCtx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ExecOutcome {
    /// Clears all three write lists, keeping their capacity for reuse.
    pub fn clear(&mut self) {
        self.nba.clear();
        self.blocking_writes.clear();
        self.blocking.clear();
    }
}

/// Executes one activation of `node` reading from `base`, with a no-op
/// monitor. See [`execute_into`].
pub fn execute_behavioral<S: ValueSource + ?Sized>(
    design: &Design,
    node: &BehavioralNode,
    base: &S,
    record_trace: bool,
) -> (ExecOutcome, ExecTrace) {
    if record_trace {
        let mut mon = TraceMonitor::default();
        let out = execute_monitored(design, node, base, &mut mon);
        (out, mon.trace)
    } else {
        let mut mon = NoopMonitor;
        (
            execute_monitored(design, node, base, &mut mon),
            ExecTrace::default(),
        )
    }
}

/// Executes one activation of `node` with a throwaway context, returning a
/// fresh outcome. Convenience wrapper over [`execute_into`]; use that form
/// on hot paths.
pub fn execute_monitored<S: ValueSource + ?Sized, M: ExecMonitor + ?Sized>(
    design: &Design,
    node: &BehavioralNode,
    base: &S,
    monitor: &mut M,
) -> ExecOutcome {
    let mut ctx = ExecCtx::new();
    let mut out = ExecOutcome::default();
    execute_into(design, node, base, monitor, &mut ctx, &mut out);
    out
}

/// Executes one activation of `node`, reading signal values from `base` by
/// borrow, reporting the execution path to `monitor`, drawing temporaries
/// from `ctx` and writing the results into `out` (cleared first, capacity
/// kept).
///
/// Blocking writes become visible to subsequent reads within this execution
/// (via the overlay in `out.blocking`) and are reported both as ordered
/// [`SlotWrite`]s and as final per-signal values; non-blocking writes are
/// collected in order for the NBA region.
///
/// # Panics
///
/// Panics if a `for` loop exceeds an internal iteration bound — a malformed
/// design rather than a recoverable condition.
pub fn execute_into<S: ValueSource + ?Sized, M: ExecMonitor + ?Sized>(
    design: &Design,
    node: &BehavioralNode,
    base: &S,
    monitor: &mut M,
    ctx: &mut ExecCtx,
    out: &mut ExecOutcome,
) {
    execute_backend_into(design, node, None, base, monitor, ctx, out)
}

/// [`execute_into`] on the compiled-tape backend: right-hand sides, branch
/// decisions and dynamic lvalue indices are evaluated by replaying the
/// node's pre-compiled [`BehavioralTapes`] instead of walking its
/// expression trees. Bit-identical outcomes, same zero-allocation
/// guarantees (the tape slot arena lives in `ctx`).
pub fn execute_tape_into<S: ValueSource + ?Sized, M: ExecMonitor + ?Sized>(
    design: &Design,
    node: &BehavioralNode,
    tapes: &BehavioralTapes,
    base: &S,
    monitor: &mut M,
    ctx: &mut ExecCtx,
    out: &mut ExecOutcome,
) {
    execute_backend_into(design, node, Some(tapes), base, monitor, ctx, out)
}

fn execute_backend_into<S: ValueSource + ?Sized, M: ExecMonitor + ?Sized>(
    design: &Design,
    node: &BehavioralNode,
    tapes: Option<&BehavioralTapes>,
    base: &S,
    monitor: &mut M,
    ctx: &mut ExecCtx,
    out: &mut ExecOutcome,
) {
    // Recycle the previous activation's value buffers into the scratch
    // pool instead of dropping them with `out.clear()`: on wide designs
    // these carry the boxed >64-bit storage, and losing them would force
    // the next activation to reallocate.
    for (_, v) in out.blocking.drain(..) {
        ctx.scratch.put(v);
    }
    for w in out.blocking_writes.drain(..) {
        ctx.scratch.put(w.value);
    }
    for w in out.nba.drain(..) {
        ctx.scratch.put(w.value);
    }
    if ctx.overlay_map.len() < design.num_signals() {
        ctx.overlay_map.resize(design.num_signals(), u32::MAX);
    }
    let mut interp = Interp {
        design,
        vdg: &node.vdg,
        tapes,
        base,
        overlay: &mut out.blocking,
        overlay_map: &mut ctx.overlay_map,
        nba: &mut out.nba,
        blocking_writes: &mut out.blocking_writes,
        scratch: &mut ctx.scratch,
        tape_scratch: &mut ctx.tape,
        monitor,
        node_name: &node.name,
    };
    interp.exec_stmt(&node.body);
    // Reset the dense index for the next activation (only the overlaid
    // signals were touched).
    for (sig, _) in &out.blocking {
        ctx.overlay_map[sig.index()] = u32::MAX;
    }
}

struct Interp<'a, S: ?Sized, M: ?Sized> {
    design: &'a Design,
    vdg: &'a Vdg,
    /// Compiled tapes of this node when running on the tape backend.
    tapes: Option<&'a BehavioralTapes>,
    base: &'a S,
    /// Blocking-write overlay, first-write order. Doubles as the
    /// outcome's final-values list.
    overlay: &'a mut Vec<(SignalId, LogicVec)>,
    /// Dense per-signal index into `overlay` (`u32::MAX` = absent).
    overlay_map: &'a mut Vec<u32>,
    nba: &'a mut Vec<SlotWrite>,
    blocking_writes: &'a mut Vec<SlotWrite>,
    scratch: &'a mut EvalScratch,
    tape_scratch: &'a mut TapeScratch,
    monitor: &'a mut M,
    node_name: &'a str,
}

/// A view that resolves blocking-written locals from an overlay and
/// everything else from a base source. Public so redundancy monitors can
/// build the same view over a fault's committed state.
pub struct OverlayView<'a, S: ?Sized> {
    /// Blocking-write overlay (last entry for a signal wins).
    pub overlay: &'a [(SignalId, LogicVec)],
    /// Base source for signals absent from the overlay.
    pub base: &'a S,
}

impl<S: ValueSource + ?Sized> ValueSource for OverlayView<'_, S> {
    fn value(&self, sig: SignalId) -> &LogicVec {
        for (s, v) in self.overlay.iter().rev() {
            if *s == sig {
                return v;
            }
        }
        self.base.value(sig)
    }
}

/// The interpreter's internal overlay view: resolves blocking-written
/// locals through a dense per-signal index in O(1) (the overlay holds at
/// most one entry per signal, kept current in place), everything else from
/// the base source. Equivalent to [`OverlayView`], which remains the
/// allocation-free general form for monitors that overlay arbitrary
/// slices.
struct MappedOverlay<'a, S: ?Sized> {
    overlay: &'a [(SignalId, LogicVec)],
    map: &'a [u32],
    base: &'a S,
}

impl<S: ValueSource + ?Sized> ValueSource for MappedOverlay<'_, S> {
    fn value(&self, sig: SignalId) -> &LogicVec {
        match self.map[sig.index()] {
            u32::MAX => self.base.value(sig),
            i => &self.overlay[i as usize].1,
        }
    }
}

impl<'a, S: ValueSource + ?Sized, M: ExecMonitor + ?Sized> Interp<'a, S, M> {
    /// Evaluates `e` under the overlay view into `out`, drawing temporaries
    /// from the context's scratch arena.
    fn eval_into(&mut self, e: &eraser_ir::Expr, out: &mut LogicVec) {
        let view = MappedOverlay {
            overlay: self.overlay,
            map: self.overlay_map,
            base: self.base,
        };
        eval_expr_into(e, &view, self.scratch, out);
    }

    /// Reports a just-evaluated decision to the monitor's view hook.
    fn notify_decision_view(&mut self, id: DecisionId) {
        let view = MappedOverlay {
            overlay: self.overlay,
            map: self.overlay_map,
            base: self.base,
        };
        self.monitor.on_decision_view(id, &view);
    }

    /// Reports a skipped write (unknown dynamic index) to the monitor.
    fn notify_unknown_index(&mut self, index: &Expr) {
        let view = MappedOverlay {
            overlay: self.overlay,
            map: self.overlay_map,
            base: self.base,
        };
        self.monitor.on_unknown_index(index, &view);
    }

    fn decide(&mut self, id: DecisionId) -> u32 {
        let view = MappedOverlay {
            overlay: self.overlay,
            map: self.overlay_map,
            base: self.base,
        };
        match self.tapes {
            Some(bt) => bt.decisions[id.index()].evaluate_with(&view, self.tape_scratch),
            None => self.vdg.decisions[id.index()]
                .eval
                .evaluate_with(&view, self.scratch),
        }
    }

    fn exec_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.exec_stmt(s);
                }
            }
            Stmt::Nop => {}
            Stmt::Assign {
                lhs,
                rhs,
                blocking,
                segment,
            } => {
                self.monitor.on_segment(*segment, self.overlay);
                // Draw the value buffer at the written width's storage
                // class: the right-hand side almost always evaluates at
                // the target width, so on wide designs (>64-bit signals)
                // this keeps the boxed scratch buffers from reshaping
                // against narrow temporaries cycle after cycle.
                let value_width = match lhs {
                    LValue::Full(sig) => self.design.signal(*sig).width,
                    LValue::PartSelect { hi, lo, .. } => hi - lo + 1,
                    LValue::BitSelect { .. } => 1,
                    LValue::IndexedPart { width, .. } => *width,
                };
                let mut value = self.scratch.take_for(value_width);
                let seg_tapes = self.tapes.map(|bt| &bt.segments[segment.index()]);
                match seg_tapes {
                    Some(st) => {
                        let view = MappedOverlay {
                            overlay: self.overlay,
                            map: self.overlay_map,
                            base: self.base,
                        };
                        run_tape(&st.rhs, &view, self.tape_scratch, &mut value);
                    }
                    None => self.eval_into(rhs, &mut value),
                }
                let lv_tape = seg_tapes.and_then(|st| st.lv_index.as_ref());
                let write = match self.resolve_write(lhs, lv_tape, value) {
                    Ok(write) => write,
                    // Unknown/out-of-range dynamic index: no write; the
                    // value buffer goes back to the pool.
                    Err(value) => {
                        self.scratch.put(value);
                        return;
                    }
                };
                if *blocking {
                    self.blocking_writes.push(write);
                    self.apply_last_blocking();
                } else {
                    self.nba.push(write);
                }
            }
            Stmt::If {
                then_s,
                else_s,
                decision,
                ..
            } => {
                let outcome = self.decide(*decision);
                self.monitor.on_decision(*decision, outcome, self.overlay);
                self.notify_decision_view(*decision);
                if outcome == 1 {
                    self.exec_stmt(then_s);
                } else if let Some(e) = else_s {
                    self.exec_stmt(e);
                }
            }
            Stmt::Case {
                arms,
                default,
                decision,
                ..
            } => {
                let outcome = self.decide(*decision);
                self.monitor.on_decision(*decision, outcome, self.overlay);
                self.notify_decision_view(*decision);
                if (outcome as usize) < arms.len() {
                    self.exec_stmt(&arms[outcome as usize].body);
                } else if let Some(d) = default {
                    self.exec_stmt(d);
                }
            }
            Stmt::For {
                init,
                step,
                body,
                decision,
                ..
            } => {
                self.exec_stmt(init);
                let mut iterations = 0u32;
                loop {
                    let outcome = self.decide(*decision);
                    self.monitor.on_decision(*decision, outcome, self.overlay);
                    self.notify_decision_view(*decision);
                    if outcome != 1 {
                        break;
                    }
                    self.exec_stmt(body);
                    self.exec_stmt(step);
                    iterations += 1;
                    assert!(
                        iterations < MAX_LOOP_ITERATIONS,
                        "for loop in `{}` exceeded {MAX_LOOP_ITERATIONS} iterations",
                        self.node_name
                    );
                }
            }
        }
    }

    /// Resolves an lvalue into a concrete [`SlotWrite`], sizing `value` to
    /// the written range (a no-op when the width already matches). Dynamic
    /// indices evaluate through `lv_tape` on the tape backend. Returns the
    /// untouched value buffer as `Err` for unknown or out-of-range dynamic
    /// indices (no bits are written, per simulator convention), so the
    /// caller can recycle it.
    fn resolve_write(
        &mut self,
        lhs: &LValue,
        lv_tape: Option<&EvalTape>,
        value: LogicVec,
    ) -> Result<SlotWrite, LogicVec> {
        match lhs {
            LValue::Full(sig) => Ok(SlotWrite {
                target: *sig,
                range: None,
                value: value.into_width(self.design.signal(*sig).width),
            }),
            LValue::PartSelect { base, hi, lo } => Ok(SlotWrite {
                target: *base,
                range: Some((*lo, hi - lo + 1)),
                value: value.into_width(hi - lo + 1),
            }),
            LValue::BitSelect { base, index } => {
                let Some(idx) = self.eval_index(index, lv_tape) else {
                    self.notify_unknown_index(index);
                    return Err(value);
                };
                let width = self.design.signal(*base).width;
                if idx >= width as u64 {
                    return Err(value);
                }
                Ok(SlotWrite {
                    target: *base,
                    range: Some((idx as u32, 1)),
                    value: value.into_width(1),
                })
            }
            LValue::IndexedPart { base, start, width } => {
                let Some(s) = self.eval_index(start, lv_tape) else {
                    self.notify_unknown_index(start);
                    return Err(value);
                };
                let sig_w = self.design.signal(*base).width as u64;
                if s >= sig_w {
                    return Err(value);
                }
                Ok(SlotWrite {
                    target: *base,
                    range: Some((s as u32, *width)),
                    value: value.into_width(*width),
                })
            }
        }
    }

    /// Evaluates a dynamic lvalue index, returning `None` when unknown.
    fn eval_index(&mut self, e: &eraser_ir::Expr, lv_tape: Option<&EvalTape>) -> Option<u64> {
        // Index expressions are (virtually always) word-sized; asking for
        // the inline storage class avoids popping a boxed wide buffer.
        let mut idx = self.scratch.take_for(64);
        match lv_tape {
            Some(t) => {
                let view = MappedOverlay {
                    overlay: self.overlay,
                    map: self.overlay_map,
                    base: self.base,
                };
                run_tape(t, &view, self.tape_scratch, &mut idx);
            }
            None => self.eval_into(e, &mut idx),
        }
        let r = idx.to_u64();
        self.scratch.put(idx);
        r
    }

    /// Folds the most recently pushed blocking write into the overlay, in
    /// place: partial writes patch the existing overlay entry (seeding it
    /// from the base value on first touch), full writes replace it.
    fn apply_last_blocking(&mut self) {
        let w = self.blocking_writes.last().expect("just pushed");
        let sig = w.target;
        let idx = self.overlay_map[sig.index()];
        if idx != u32::MAX {
            w.apply_assign(&mut self.overlay[idx as usize].1);
            return;
        }
        let mut cur = self.scratch.take_for(self.design.signal(sig).width);
        match w.range {
            // Full write: the overlay entry is exactly the written value.
            None => cur.assign_from(&w.value),
            Some(_) => {
                cur.assign_from(self.base.value(sig));
                w.apply_assign(&mut cur);
            }
        }
        self.overlay_map[sig.index()] = self.overlay.len() as u32;
        self.overlay.push((sig, cur));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ValueStore;
    use eraser_frontend::compile;

    fn setup(src: &str) -> (Design, ValueStore) {
        let d = compile(src, None).unwrap();
        let store = ValueStore::new(&d);
        (d, store)
    }

    #[test]
    fn blocking_writes_are_visible_within_execution() {
        let (d, mut store) = setup(
            "module m(input wire [7:0] a, output reg [7:0] q);
               reg [7:0] t;
               always @(*) begin
                 t = a + 8'h01;
                 q = t + t;
               end
             endmodule",
        );
        let a = d.find_signal("a").unwrap();
        let q = d.find_signal("q").unwrap();
        store.set(a, LogicVec::from_u64(8, 4));
        let (out, _) = execute_behavioral(&d, &d.behavioral_nodes()[0], &store, false);
        let qv = out.blocking.iter().find(|(s, _)| *s == q).unwrap();
        assert_eq!(qv.1.to_u64(), Some(10));
        assert!(out.nba.is_empty());
        assert_eq!(out.blocking_writes.len(), 2);
    }

    #[test]
    fn nba_writes_are_deferred_and_ordered() {
        let (d, mut store) = setup(
            "module m(input wire clk, input wire [3:0] a, output reg [3:0] q);
               always @(posedge clk) begin
                 q <= a;
                 q <= a + 4'h1;
               end
             endmodule",
        );
        let a = d.find_signal("a").unwrap();
        store.set(a, LogicVec::from_u64(4, 3));
        let (out, _) = execute_behavioral(&d, &d.behavioral_nodes()[0], &store, false);
        assert_eq!(out.nba.len(), 2);
        // Last write wins when applied in order.
        let q = d.find_signal("q").unwrap();
        let mut cur = LogicVec::new_x(4);
        for w in &out.nba {
            assert_eq!(w.target, q);
            cur = w.apply(&cur);
        }
        assert_eq!(cur.to_u64(), Some(4));
        assert!(out.blocking.is_empty());
    }

    #[test]
    fn trace_records_decisions_and_segments() {
        let (d, mut store) = setup(
            "module m(input wire s, input wire [3:0] a, output reg [3:0] q);
               always @(*) begin
                 if (s) q = a;
                 else q = 4'h0;
               end
             endmodule",
        );
        let s = d.find_signal("s").unwrap();
        store.set(s, LogicVec::from_u64(1, 1));
        let (_, trace) = execute_behavioral(&d, &d.behavioral_nodes()[0], &store, true);
        assert_eq!(trace.events.len(), 2);
        assert!(matches!(
            trace.events[0],
            TraceEvent::Decision { outcome: 1, .. }
        ));
        assert!(matches!(trace.events[1], TraceEvent::Segment(_)));
        // X condition takes the else path.
        store.set(s, LogicVec::new_x(1));
        let (_, trace) = execute_behavioral(&d, &d.behavioral_nodes()[0], &store, true);
        assert!(matches!(
            trace.events[0],
            TraceEvent::Decision { outcome: 0, .. }
        ));
    }

    #[test]
    fn case_decision_outcomes() {
        let (d, mut store) = setup(
            "module m(input wire [1:0] s, output reg [3:0] q);
               always @(*) begin
                 case (s)
                   2'd0: q = 4'h1;
                   2'd1: q = 4'h2;
                   default: q = 4'hf;
                 endcase
               end
             endmodule",
        );
        let s = d.find_signal("s").unwrap();
        let node = &d.behavioral_nodes()[0];
        store.set(s, LogicVec::from_u64(2, 1));
        let (out, trace) = execute_behavioral(&d, node, &store, true);
        assert!(matches!(
            trace.events[0],
            TraceEvent::Decision { outcome: 1, .. }
        ));
        assert_eq!(out.blocking[0].1.to_u64(), Some(2));
        store.set(s, LogicVec::from_u64(2, 3));
        let (out, trace) = execute_behavioral(&d, node, &store, true);
        assert!(matches!(
            trace.events[0],
            TraceEvent::Decision { outcome: 2, .. }
        ));
        assert_eq!(out.blocking[0].1.to_u64(), Some(0xf));
    }

    #[test]
    fn for_loop_executes_and_traces_each_iteration() {
        let (d, mut store) = setup(
            "module m(input wire [7:0] a, output reg [7:0] q);
               integer i;
               always @(*) begin
                 q = 8'h00;
                 for (i = 0; i < 8; i = i + 1)
                   q[i] = a[i] ^ 1'b1;
               end
             endmodule",
        );
        let a = d.find_signal("a").unwrap();
        let q = d.find_signal("q").unwrap();
        store.set(a, LogicVec::from_u64(8, 0b1010_1010));
        let (out, trace) = execute_behavioral(&d, &d.behavioral_nodes()[0], &store, true);
        let qv = out.blocking.iter().find(|(s, _)| *s == q).unwrap();
        assert_eq!(qv.1.to_u64(), Some(0b0101_0101));
        // 9 loop-condition decisions (8 true + 1 false).
        let decisions = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Decision { .. }))
            .count();
        assert_eq!(decisions, 9);
    }

    #[test]
    fn unknown_dynamic_index_writes_nothing() {
        let (d, store) = setup(
            "module m(input wire [2:0] i, output reg [7:0] q);
               always @(*) q[i] = 1'b1;
             endmodule",
        );
        // i is X -> no write at all.
        let (out, _) = execute_behavioral(&d, &d.behavioral_nodes()[0], &store, false);
        assert!(out.blocking.is_empty());
    }

    #[test]
    fn partial_write_preserves_other_bits() {
        let (d, mut store) = setup(
            "module m(input wire [3:0] a, output reg [7:0] q);
               always @(*) q[7:4] = a;
             endmodule",
        );
        let a = d.find_signal("a").unwrap();
        let q = d.find_signal("q").unwrap();
        store.set(a, LogicVec::from_u64(4, 0x9));
        store.set(q, LogicVec::from_u64(8, 0x34));
        let (out, _) = execute_behavioral(&d, &d.behavioral_nodes()[0], &store, false);
        let qv = out.blocking.iter().find(|(s, _)| *s == q).unwrap();
        assert_eq!(qv.1.to_u64(), Some(0x94));
    }

    #[test]
    fn monitor_sees_overlay_state() {
        struct OverlayProbe {
            at_decision: Vec<usize>,
        }
        impl ExecMonitor for OverlayProbe {
            fn on_decision(&mut self, _: DecisionId, _: u32, ov: &[(SignalId, LogicVec)]) {
                self.at_decision.push(ov.len());
            }
            fn on_segment(&mut self, _: SegmentId, _: &[(SignalId, LogicVec)]) {}
        }
        let (d, store) = setup(
            "module m(input wire c, output reg [3:0] q);
               reg [3:0] t;
               always @(*) begin
                 t = 4'h1;
                 if (c) q = t; else q = 4'h0;
               end
             endmodule",
        );
        let mut probe = OverlayProbe {
            at_decision: Vec::new(),
        };
        execute_monitored(&d, &d.behavioral_nodes()[0], &store, &mut probe);
        // By the time the `if` is evaluated, t is in the overlay.
        assert_eq!(probe.at_decision, vec![1]);
    }
}
