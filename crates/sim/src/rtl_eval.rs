//! Evaluation of primitive RTL nodes.

use eraser_ir::{eval::eval_binary, Design, RtlNode, RtlOp, UnaryOp, ValueSource};
use eraser_logic::{LogicBit, LogicVec};

/// Evaluates one RTL operator on already-fetched input values, producing a
/// value of `out_width` bits.
///
/// Used by the good simulator, the ERASER concurrent engine (for both good
/// and per-fault evaluation) and the compiled baseline — the single source
/// of truth for RTL node semantics.
pub fn eval_rtl_op(op: &RtlOp, inputs: &[LogicVec], out_width: u32) -> LogicVec {
    let v = match op {
        RtlOp::Buf => inputs[0].clone(),
        RtlOp::Const(c) => c.clone(),
        RtlOp::Unary(u) => {
            let a = &inputs[0];
            match u {
                UnaryOp::Not => a.not(),
                UnaryOp::Neg => a.neg(),
                UnaryOp::LogicalNot => LogicVec::from_bit(a.truth().not()),
                UnaryOp::RedAnd => LogicVec::from_bit(a.red_and()),
                UnaryOp::RedOr => LogicVec::from_bit(a.red_or()),
                UnaryOp::RedXor => LogicVec::from_bit(a.red_xor()),
            }
        }
        RtlOp::Binary(b) => eval_binary(*b, &inputs[0], &inputs[1]),
        RtlOp::Mux => match inputs[0].truth() {
            LogicBit::One => inputs[1].clone(),
            LogicBit::Zero => inputs[2].clone(),
            _ => inputs[1].merge_x(&inputs[2]),
        },
        RtlOp::Concat => {
            // Node inputs are MSB-first (source order).
            let refs: Vec<&LogicVec> = inputs.iter().rev().collect();
            LogicVec::concat_lsb_first(&refs)
        }
        RtlOp::Replicate(n) => inputs[0].replicate(*n),
        RtlOp::Slice { hi, lo } => inputs[0].slice(*hi, *lo),
        RtlOp::Index => match inputs[1].to_u64() {
            Some(i) if i <= u32::MAX as u64 => LogicVec::from_bit(inputs[0].bit_or_x(i as u32)),
            _ => LogicVec::from_bit(LogicBit::X),
        },
        RtlOp::IndexedPart { width } => match inputs[1].to_u64() {
            Some(s) if s + *width as u64 <= u32::MAX as u64 => {
                inputs[0].slice(s as u32 + width - 1, s as u32)
            }
            _ => LogicVec::new_x(*width),
        },
    };
    if v.width() == out_width {
        v
    } else {
        v.resize(out_width)
    }
}

/// Evaluates an RTL node by fetching its inputs from `src`.
pub fn eval_rtl_node<S: ValueSource + ?Sized>(
    design: &Design,
    node: &RtlNode,
    src: &S,
) -> LogicVec {
    let inputs: Vec<LogicVec> = node.inputs.iter().map(|&s| src.value(s)).collect();
    eval_rtl_op(&node.op, &inputs, design.signal(node.output).width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eraser_ir::BinaryOp;

    fn v(w: u32, x: u64) -> LogicVec {
        LogicVec::from_u64(w, x)
    }

    #[test]
    fn buf_resizes() {
        assert_eq!(
            eval_rtl_op(&RtlOp::Buf, &[v(4, 0xf)], 8).to_u64(),
            Some(0xf)
        );
        assert_eq!(
            eval_rtl_op(&RtlOp::Buf, &[v(8, 0xff)], 4).to_u64(),
            Some(0xf)
        );
    }

    #[test]
    fn mux_with_unknown_cond_merges() {
        let out = eval_rtl_op(
            &RtlOp::Mux,
            &[LogicVec::new_x(1), v(4, 0b1100), v(4, 0b1010)],
            4,
        );
        assert_eq!(out.bit(3), LogicBit::One);
        assert_eq!(out.bit(0), LogicBit::Zero);
        assert_eq!(out.bit(1), LogicBit::X);
    }

    #[test]
    fn concat_msb_first_inputs() {
        // Source {a, b} with a=0xA (4b), b=0x5 (4b) -> 0xA5.
        let out = eval_rtl_op(&RtlOp::Concat, &[v(4, 0xa), v(4, 0x5)], 8);
        assert_eq!(out.to_u64(), Some(0xa5));
    }

    #[test]
    fn index_unknown_is_x() {
        let out = eval_rtl_op(&RtlOp::Index, &[v(8, 0xff), LogicVec::new_x(3)], 1);
        assert_eq!(out.bit(0), LogicBit::X);
        let out = eval_rtl_op(&RtlOp::Index, &[v(8, 0x04), v(4, 2)], 1);
        assert_eq!(out.to_u64(), Some(1));
    }

    #[test]
    fn binary_through_shared_eval() {
        let out = eval_rtl_op(&RtlOp::Binary(BinaryOp::Add), &[v(8, 250), v(8, 10)], 8);
        assert_eq!(out.to_u64(), Some(4));
    }
}
