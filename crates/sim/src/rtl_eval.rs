//! Evaluation of primitive RTL nodes.

use eraser_ir::{eval_binary_assign, Design, EvalScratch, RtlNode, RtlOp, UnaryOp, ValueSource};
use eraser_logic::{LogicBit, LogicVec};

/// Evaluates one RTL operator into `out`, reading operand `k` through
/// `input(k)` (of `n_inputs` total) and drawing temporaries from `scratch`.
///
/// The closure-based operand access lets callers feed borrowed values from
/// heterogeneous storage (a value store, a fault's diff overlay) without
/// materializing a slice — combined with the in-place `LogicVec` ops this
/// makes steady-state node evaluation allocation-free. Used by the good
/// simulator, the ERASER concurrent engine (for both good and per-fault
/// evaluation) and the compiled baseline — the single source of truth for
/// RTL node semantics.
pub fn eval_rtl_op_with<'a, F: Fn(usize) -> &'a LogicVec>(
    op: &RtlOp,
    input: &F,
    n_inputs: usize,
    out_width: u32,
    scratch: &mut EvalScratch,
    out: &mut LogicVec,
) {
    match op {
        RtlOp::Buf => out.assign_from(input(0)),
        RtlOp::Const(c) => out.assign_from(c),
        RtlOp::Unary(u) => {
            let a = input(0);
            match u {
                UnaryOp::Not => {
                    out.assign_from(a);
                    out.not_assign();
                }
                UnaryOp::Neg => {
                    out.assign_from(a);
                    out.neg_assign();
                }
                UnaryOp::LogicalNot => out.assign_bit(a.truth().not()),
                UnaryOp::RedAnd => out.assign_bit(a.red_and()),
                UnaryOp::RedOr => out.assign_bit(a.red_or()),
                UnaryOp::RedXor => out.assign_bit(a.red_xor()),
            }
        }
        RtlOp::Binary(b) => {
            out.assign_from(input(0));
            eval_binary_assign(*b, out, input(1), scratch);
        }
        RtlOp::Mux => match input(0).truth() {
            LogicBit::One => out.assign_from(input(1)),
            LogicBit::Zero => out.assign_from(input(2)),
            _ => {
                out.assign_from(input(1));
                out.merge_x_assign(input(2));
            }
        },
        RtlOp::Concat => {
            // Node inputs are MSB-first (source order).
            let total: u32 = (0..n_inputs).map(|k| input(k).width()).sum();
            out.make_zeros(total);
            let mut lo = 0;
            for k in (0..n_inputs).rev() {
                let p = input(k);
                out.assign_slice(lo, p);
                lo += p.width();
            }
        }
        RtlOp::Replicate(n) => {
            let v = input(0);
            out.make_zeros(v.width() * n);
            for k in 0..*n {
                out.assign_slice(k * v.width(), v);
            }
        }
        RtlOp::Slice { hi, lo } => input(0).slice_into(*hi, *lo, out),
        RtlOp::Index => match input(1).to_u64() {
            Some(i) if i <= u32::MAX as u64 => out.assign_bit(input(0).bit_or_x(i as u32)),
            _ => out.assign_bit(LogicBit::X),
        },
        RtlOp::IndexedPart { width } => match input(1).to_u64() {
            Some(s) if s + *width as u64 <= u32::MAX as u64 => {
                input(0).slice_into(s as u32 + width - 1, s as u32, out)
            }
            _ => out.make_x(*width),
        },
    }
    if out.width() != out_width {
        out.resize_assign(out_width);
    }
}

/// Evaluates one RTL operator on already-fetched input values, producing a
/// fresh value of `out_width` bits. Convenience wrapper over
/// [`eval_rtl_op_with`]; use that form on hot paths.
pub fn eval_rtl_op(op: &RtlOp, inputs: &[LogicVec], out_width: u32) -> LogicVec {
    let mut scratch = EvalScratch::new();
    let mut out = LogicVec::default();
    eval_rtl_op_with(
        op,
        &|k| &inputs[k],
        inputs.len(),
        out_width,
        &mut scratch,
        &mut out,
    );
    out
}

/// Evaluates an RTL node into `out`, fetching its inputs from `src` by
/// borrow.
pub fn eval_rtl_node_into<S: ValueSource + ?Sized>(
    design: &Design,
    node: &RtlNode,
    src: &S,
    scratch: &mut EvalScratch,
    out: &mut LogicVec,
) {
    eval_rtl_op_with(
        &node.op,
        &|k| src.value(node.inputs[k]),
        node.inputs.len(),
        design.signal(node.output).width,
        scratch,
        out,
    );
}

/// Evaluates an RTL node by fetching its inputs from `src`, producing a
/// fresh value. Convenience wrapper over [`eval_rtl_node_into`].
pub fn eval_rtl_node<S: ValueSource + ?Sized>(
    design: &Design,
    node: &RtlNode,
    src: &S,
) -> LogicVec {
    let mut scratch = EvalScratch::new();
    let mut out = LogicVec::default();
    eval_rtl_node_into(design, node, src, &mut scratch, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eraser_ir::BinaryOp;

    fn v(w: u32, x: u64) -> LogicVec {
        LogicVec::from_u64(w, x)
    }

    #[test]
    fn buf_resizes() {
        assert_eq!(
            eval_rtl_op(&RtlOp::Buf, &[v(4, 0xf)], 8).to_u64(),
            Some(0xf)
        );
        assert_eq!(
            eval_rtl_op(&RtlOp::Buf, &[v(8, 0xff)], 4).to_u64(),
            Some(0xf)
        );
    }

    #[test]
    fn mux_with_unknown_cond_merges() {
        let out = eval_rtl_op(
            &RtlOp::Mux,
            &[LogicVec::new_x(1), v(4, 0b1100), v(4, 0b1010)],
            4,
        );
        assert_eq!(out.bit(3), LogicBit::One);
        assert_eq!(out.bit(0), LogicBit::Zero);
        assert_eq!(out.bit(1), LogicBit::X);
    }

    #[test]
    fn concat_msb_first_inputs() {
        // Source {a, b} with a=0xA (4b), b=0x5 (4b) -> 0xA5.
        let out = eval_rtl_op(&RtlOp::Concat, &[v(4, 0xa), v(4, 0x5)], 8);
        assert_eq!(out.to_u64(), Some(0xa5));
    }

    #[test]
    fn index_unknown_is_x() {
        let out = eval_rtl_op(&RtlOp::Index, &[v(8, 0xff), LogicVec::new_x(3)], 1);
        assert_eq!(out.bit(0), LogicBit::X);
        let out = eval_rtl_op(&RtlOp::Index, &[v(8, 0x04), v(4, 2)], 1);
        assert_eq!(out.to_u64(), Some(1));
    }

    #[test]
    fn binary_through_shared_eval() {
        let out = eval_rtl_op(&RtlOp::Binary(BinaryOp::Add), &[v(8, 250), v(8, 10)], 8);
        assert_eq!(out.to_u64(), Some(4));
    }

    #[test]
    fn into_reuses_output_buffer_across_shapes() {
        let mut scratch = EvalScratch::new();
        let mut out = LogicVec::default();
        let (a, b) = (v(4, 0xa), v(4, 0x5));
        eval_rtl_op_with(
            &RtlOp::Concat,
            &|k| [&a, &b][k],
            2,
            8,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out.to_u64(), Some(0xa5));
        let (c, d) = (v(8, 9), v(8, 9));
        eval_rtl_op_with(
            &RtlOp::Binary(BinaryOp::Mul),
            &|k| [&c, &d][k],
            2,
            8,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out.to_u64(), Some(81));
    }
}
