//! Good-run activation probing — the measurement side of activation-window
//! analysis.
//!
//! A [`SiteProbe`] rides along one instrumented replay of the fault-free
//! design and records, with **commit granularity** (every committed value
//! change, including transients inside a settle step), everything the
//! activation-window derivation in `eraser-fault` needs:
//!
//! * per fault-site signal and bit: the first stimulus step at which the
//!   bit committed a defined `0`, a defined `1`, and an unknown (`X`/`Z`)
//!   — from which the first *contradiction* of each stuck-at polarity and
//!   the first *refinement divergence* (forced unknown) follow directly;
//! * per signal: the first step at which an **X hazard** involving it was
//!   observed. Hazards are the points where the monotone-refinement
//!   argument breaks — the places where a fault network that merely
//!   *refines* the good network (defined values where the good run has
//!   `X`) could nonetheless diverge in behavior:
//!   - a path decision whose outcome is unknown-sensitive (an `if`/`for`
//!     condition with `X` truth, a `case` scrutinee or label carrying
//!     unknowns) — refinement can flip the branch,
//!   - a dynamic lvalue index that evaluated to unknown (the write is
//!     skipped; refinement would perform it),
//!   - an edge-watched signal whose bit 0 held `X` (IEEE event rules fire
//!     `X -> 1` as posedge, so refinement changes firing),
//!   - a level-sensitive block with an incomplete sensitivity list (its
//!     activation under refinement is not reproducible from the good run).
//!
//! The probe is deliberately fault-agnostic: it tracks *signals*, and the
//! derivation joins its data against a concrete fault list. Everything is
//! step-stamped by the driving campaign via
//! [`ReplaySim::begin_probe_step`](crate::ReplaySim::begin_probe_step);
//! state present before the first step (the power-on/construction settle)
//! is recorded as step 0 by [`SiteProbe::observe_initial`].

use crate::interp::ExecMonitor;
use crate::store::ValueStore;
use eraser_ir::{
    eval_expr_into, DecisionEval, DecisionId, DecisionInfo, Design, EvalScratch, Expr, SegmentId,
    Sensitivity, SignalId, ValueSource, Vdg,
};
use eraser_logic::{LogicBit, LogicVec};

/// Marker for "never observed".
pub const NEVER: usize = usize::MAX;

/// First-occurrence steps of each bit state at one tracked site bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFirsts {
    /// First step the bit committed a defined `0`.
    pub zero: usize,
    /// First step the bit committed a defined `1`.
    pub one: usize,
    /// First step the bit committed an unknown (`X` or `Z`).
    pub x: usize,
}

impl Default for BitFirsts {
    fn default() -> Self {
        BitFirsts {
            zero: NEVER,
            one: NEVER,
            x: NEVER,
        }
    }
}

/// Commit-granular activation/hazard recorder for one good replay. See the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct SiteProbe {
    step: usize,
    /// Per signal: per-bit first-occurrence records for tracked sites.
    sites: Vec<Option<Box<[BitFirsts]>>>,
    /// Per signal: first step an X hazard involving it was observed
    /// ([`NEVER`] = none).
    hazard: Vec<usize>,
    /// Per signal: the signal feeds an edge sensitivity list.
    edge_watched: Vec<bool>,
    scratch: EvalScratch,
}

impl SiteProbe {
    /// Creates a probe over `design` tracking the given site signals
    /// (duplicates are fine).
    pub fn new(design: &Design, sites: impl IntoIterator<Item = SignalId>) -> Self {
        let n = design.num_signals();
        let mut probe = SiteProbe {
            step: 0,
            sites: vec![None; n],
            hazard: vec![NEVER; n],
            edge_watched: (0..n)
                .map(|i| !design.edge_fanout(SignalId::from_index(i)).is_empty())
                .collect(),
            scratch: EvalScratch::new(),
        };
        for sig in sites {
            let width = design.signal(sig).width as usize;
            probe.sites[sig.index()]
                .get_or_insert_with(|| vec![BitFirsts::default(); width].into_boxed_slice());
        }
        probe
    }

    /// Sets the stimulus step subsequent observations are attributed to.
    pub fn begin_step(&mut self, step: usize) {
        self.step = step;
    }

    /// Records the baseline: the current (construction-settled) state of
    /// every tracked site, power-on X hazards on edge-watched signals, and
    /// static decision hazards of the level-sensitive blocks that executed
    /// during construction. Called by
    /// [`ReplaySim::attach_probe`](crate::ReplaySim::attach_probe)
    /// implementations.
    pub fn observe_initial(&mut self, design: &Design, values: &ValueStore) {
        for i in 0..self.sites.len() {
            let sig = SignalId::from_index(i);
            if self.sites[i].is_some() {
                self.record_bits(sig, values.get(sig));
            }
            if self.edge_watched[i]
                && !matches!(values.get(sig).bit_or_x(0), LogicBit::Zero | LogicBit::One)
            {
                self.mark_hazard(sig);
            }
        }
        for node in design.behavioral_nodes() {
            match &node.sensitivity {
                Sensitivity::Edges(_) => {}
                Sensitivity::Star => self.static_decision_scan(&node.vdg, values),
                Sensitivity::Level(list) => {
                    self.static_decision_scan(&node.vdg, values);
                    // Incomplete sensitivity list: activations under a
                    // refined fault network are not reproducible from the
                    // good run — conservatively hazard everything the
                    // block reads.
                    if node.reads.iter().any(|r| !list.contains(r)) {
                        for &r in &node.reads {
                            self.mark_hazard(r);
                        }
                    }
                }
            }
        }
    }

    /// Records a committed value of `sig` (called for every changed commit
    /// and harmlessly idempotent on repeats).
    #[inline]
    pub fn observe_commit(&mut self, sig: SignalId, value: &LogicVec) {
        if self.sites[sig.index()].is_some() {
            self.record_bits(sig, value);
        }
        if self.edge_watched[sig.index()]
            && !matches!(value.bit_or_x(0), LogicBit::Zero | LogicBit::One)
        {
            self.mark_hazard(sig);
        }
    }

    /// Checks one evaluated path decision for unknown-sensitivity and, if
    /// its outcome could flip under X refinement, hazards every read
    /// signal currently carrying unknowns.
    pub fn decision_hazard(&mut self, info: &DecisionInfo, view: &dyn ValueSource) {
        // Fast pre-filter: a decision over fully defined reads can never
        // flip under refinement.
        if !info.reads.iter().any(|r| view.value(*r).has_unknown()) {
            return;
        }
        let flippable = match &info.eval {
            DecisionEval::Truth(cond) => {
                let mut v = self.scratch.take();
                eval_expr_into(cond, view, &mut self.scratch, &mut v);
                let t = v.truth();
                self.scratch.put(v);
                // A defined `1` (some defined one-bit) or defined `0` (all
                // bits defined zero) truth survives any refinement.
                !matches!(t, LogicBit::Zero | LogicBit::One)
            }
            DecisionEval::Case {
                scrutinee,
                arm_labels,
                ..
            } => {
                let mut v = self.scratch.take();
                eval_expr_into(scrutinee, view, &mut self.scratch, &mut v);
                let mut unknown = v.has_unknown();
                if !unknown {
                    'labels: for labels in arm_labels {
                        for label in labels {
                            eval_expr_into(label, view, &mut self.scratch, &mut v);
                            if v.has_unknown() {
                                unknown = true;
                                break 'labels;
                            }
                        }
                    }
                }
                self.scratch.put(v);
                unknown
            }
        };
        if flippable {
            for &r in &info.reads {
                if view.value(r).has_unknown() {
                    self.mark_hazard(r);
                }
            }
        }
    }

    /// Records a dynamic lvalue index that evaluated to unknown: the write
    /// was skipped, refinement would perform it. Hazards the unknown-valued
    /// reads of the index expression.
    pub fn index_hazard(&mut self, index: &Expr, view: &dyn ValueSource) {
        let mut reads = Vec::new();
        index.collect_reads(&mut reads);
        for r in reads {
            if view.value(r).has_unknown() {
                self.mark_hazard(r);
            }
        }
    }

    /// Per-bit first-occurrence records of a tracked site, if tracked.
    pub fn site_firsts(&self, sig: SignalId) -> Option<&[BitFirsts]> {
        self.sites[sig.index()].as_deref()
    }

    /// First step an X hazard involving `sig` was observed ([`NEVER`] if
    /// none).
    pub fn hazard_step(&self, sig: SignalId) -> usize {
        self.hazard[sig.index()]
    }

    // ---- internals ----

    fn mark_hazard(&mut self, sig: SignalId) {
        let h = &mut self.hazard[sig.index()];
        *h = (*h).min(self.step);
    }

    fn record_bits(&mut self, sig: SignalId, value: &LogicVec) {
        let step = self.step;
        let firsts = self.sites[sig.index()].as_mut().expect("tracked");
        for (bit, f) in firsts.iter_mut().enumerate() {
            let slot = match value.bit_or_x(bit as u32) {
                LogicBit::Zero => &mut f.zero,
                LogicBit::One => &mut f.one,
                _ => &mut f.x,
            };
            *slot = (*slot).min(step);
        }
    }

    fn static_decision_scan(&mut self, vdg: &Vdg, values: &ValueStore) {
        for d in &vdg.decisions {
            self.decision_hazard(d, values);
        }
    }
}

/// The [`ExecMonitor`] that feeds a [`SiteProbe`] during instrumented
/// behavioral executions of the good replay. Constructed per activation
/// with the node's VDG, so decision ids resolve to their read sets and
/// `Evaluate` payloads.
pub struct ProbeMonitor<'a> {
    probe: &'a mut SiteProbe,
    vdg: &'a Vdg,
}

impl<'a> ProbeMonitor<'a> {
    /// Wraps `probe` for one activation of the node owning `vdg`.
    pub fn new(probe: &'a mut SiteProbe, vdg: &'a Vdg) -> Self {
        ProbeMonitor { probe, vdg }
    }
}

impl ExecMonitor for ProbeMonitor<'_> {
    fn on_decision(&mut self, _: DecisionId, _: u32, _: &[(SignalId, LogicVec)]) {}
    fn on_segment(&mut self, _: SegmentId, _: &[(SignalId, LogicVec)]) {}

    fn on_decision_view(&mut self, id: DecisionId, view: &dyn ValueSource) {
        self.probe
            .decision_hazard(&self.vdg.decisions[id.index()], view);
    }

    fn on_unknown_index(&mut self, index: &Expr, view: &dyn ValueSource) {
        self.probe.index_hazard(index, view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eraser_frontend::compile;

    #[test]
    fn records_site_firsts_and_edge_hazards() {
        let d = compile(
            "module m(input wire clk, input wire [1:0] a, output reg [1:0] q);
               always @(posedge clk) q <= a;
             endmodule",
            None,
        )
        .unwrap();
        let q = d.find_signal("q").unwrap();
        let clk = d.find_signal("clk").unwrap();
        let store = ValueStore::new(&d);
        let mut probe = SiteProbe::new(&d, [q]);
        probe.observe_initial(&d, &store);
        // Power-on: q is X at step 0; clk (edge-watched) is X -> hazard.
        let firsts = probe.site_firsts(q).unwrap();
        assert_eq!(firsts[0].x, 0);
        assert_eq!(firsts[0].zero, NEVER);
        assert_eq!(probe.hazard_step(clk), 0);
        // Commit a defined value at step 3.
        probe.begin_step(3);
        probe.observe_commit(q, &LogicVec::from_u64(2, 0b10));
        let firsts = probe.site_firsts(q).unwrap();
        assert_eq!(firsts[0].zero, 3);
        assert_eq!(firsts[1].one, 3);
        assert_eq!(firsts[1].zero, NEVER);
        // Untracked signals are ignored without panicking.
        probe.observe_commit(clk, &LogicVec::from_u64(1, 1));
        assert!(probe.site_firsts(clk).is_none());
    }

    #[test]
    fn x_decision_hazards_unknown_reads_only() {
        let d = compile(
            "module m(input wire s, input wire [3:0] a, output reg [3:0] q);
               always @(*) begin
                 if (s) q = a; else q = 4'h0;
               end
             endmodule",
            None,
        )
        .unwrap();
        let s = d.find_signal("s").unwrap();
        let a = d.find_signal("a").unwrap();
        let mut store = ValueStore::new(&d);
        store.set(a, LogicVec::from_u64(4, 5));
        let mut probe = SiteProbe::new(&d, []);
        probe.begin_step(2);
        let vdg = &d.behavioral_nodes()[0].vdg;
        // s is X: the decision can flip under refinement.
        probe.decision_hazard(&vdg.decisions[0], &store);
        assert_eq!(probe.hazard_step(s), 2);
        assert_eq!(probe.hazard_step(a), NEVER, "defined reads stay clean");
        // With s defined the decision is refinement-stable.
        let mut probe = SiteProbe::new(&d, []);
        store.set(s, LogicVec::from_u64(1, 1));
        probe.decision_hazard(&vdg.decisions[0], &store);
        assert_eq!(probe.hazard_step(s), NEVER);
    }

    #[test]
    fn defined_one_truth_with_other_unknowns_is_stable() {
        // Condition (a | b): a has a defined 1 bit -> truth is One even
        // though b is X; refinement cannot flip it.
        let d = compile(
            "module m(input wire [1:0] a, input wire [1:0] b, output reg [1:0] q);
               always @(*) begin
                 if (a | b) q = 2'h1; else q = 2'h0;
               end
             endmodule",
            None,
        )
        .unwrap();
        let a = d.find_signal("a").unwrap();
        let b = d.find_signal("b").unwrap();
        let mut store = ValueStore::new(&d);
        store.set(a, LogicVec::from_u64(2, 0b01));
        let mut probe = SiteProbe::new(&d, []);
        let vdg = &d.behavioral_nodes()[0].vdg;
        probe.decision_hazard(&vdg.decisions[0], &store);
        assert_eq!(probe.hazard_step(a), NEVER);
        assert_eq!(probe.hazard_step(b), NEVER);
    }
}
