//! The event-driven good (fault-free) simulator.

use crate::interp::{
    execute_into, execute_tape_into, ExecCtx, ExecMonitor, ExecOutcome, NoopMonitor, SlotWrite,
};
use crate::probe::{ProbeMonitor, SiteProbe};
use crate::rtl_eval::eval_rtl_node_into;
use crate::snapshot::{assign_logic_slice, ReplaySim, SimSnapshot};
use crate::stimulus::Stimulus;
use crate::store::ValueStore;
use eraser_ir::{
    run_tape, tapes_for_backend, BehavioralId, Design, EvalBackend, RtlNodeId, Sensitivity,
    SignalId, TapeProgram, TapeRef,
};
use eraser_logic::LogicVec;

/// Bound on delta cycles per step (oscillation guard; combinational cycles
/// are already rejected at design build time).
const DELTA_LIMIT: usize = 10_000;

/// An event-driven four-state RTL simulator for the fault-free design.
///
/// The evaluation discipline per delta cycle is:
///
/// 1. **Active region** — dirty RTL nodes and level-sensitive behavioral
///    nodes are evaluated to a fixpoint, propagating value changes through
///    their fanout.
/// 2. **Deferred edge detection** — only after the active region settles are
///    event (edge) expressions evaluated against the previously-latched
///    values. This ordering is what the ERASER paper generalizes to the
///    concurrent engine to avoid *fake events* (a bad gate prematurely
///    seeing a good value as an edge).
/// 3. Activated sequential nodes execute; their non-blocking assignments
///    are queued.
/// 4. **NBA region** — queued non-blocking writes commit in order, possibly
///    scheduling another delta.
///
/// See the [crate docs](crate) for a usage example.
#[derive(Debug, Clone)]
pub struct Simulator<'d> {
    design: &'d Design,
    /// Compiled evaluation tapes when running on the tape backend
    /// (`None` = tree walker).
    tapes: Option<TapeRef<'d>>,
    values: ValueStore,
    /// Values as of the last edge-detection point, for all signals watched
    /// by edge-triggered nodes.
    edge_prev: Vec<LogicVec>,
    rtl_dirty: Vec<bool>,
    rtl_queue: Vec<RtlNodeId>,
    beh_dirty: Vec<bool>,
    beh_queue: Vec<BehavioralId>,
    watch_changed: Vec<SignalId>,
    watch_flag: Vec<bool>,
    nba: Vec<SlotWrite>,
    /// Permanently forced bits (`force` command semantics): re-applied on
    /// every write to the signal.
    forces: Vec<(SignalId, u32, eraser_logic::LogicBit)>,
    /// Total delta cycles executed (exposed for instrumentation).
    deltas: u64,
    /// Activation probe for instrumented good replays (`None` = the
    /// zero-overhead default).
    probe: Option<Box<SiteProbe>>,

    // Reusable workspace — all steady-state stepping works out of these
    // buffers, so `step()` performs zero heap allocations once warm.
    /// Expression-evaluation scratch arena.
    ctx: ExecCtx,
    /// Behavioral-execution outcome, cleared and refilled per activation.
    ///
    /// All value temporaries — RTL node outputs, force application, NBA
    /// write folding, input resizes — come from `ctx.scratch` at the
    /// target's storage class (`take_for`), so buffers for >64-bit signals
    /// keep cycling among wide uses instead of being reshaped against
    /// narrow ones.
    outcome: ExecOutcome,
    /// Swap buffer for draining `watch_changed` without losing capacity.
    ws_changed: Vec<SignalId>,
    /// Edge-activated nodes of the current delta.
    ws_activated: Vec<BehavioralId>,
}

impl<'d> Simulator<'d> {
    /// Creates a simulator with all signals at `X` and performs the initial
    /// evaluation (constants and combinational logic settle). The
    /// evaluation backend follows `ERASER_EVAL` (tree walker by default);
    /// use [`Simulator::with_backend`] to pin one explicitly.
    pub fn new(design: &'d Design) -> Self {
        Self::with_backend(design, EvalBackend::from_env())
    }

    /// Creates a simulator pinned to `backend` (compiling a private tape
    /// program for [`EvalBackend::Tape`]).
    pub fn with_backend(design: &'d Design, backend: EvalBackend) -> Self {
        Self::build(design, tapes_for_backend(design, backend))
    }

    /// Creates a simulator on the tape backend executing a shared,
    /// pre-compiled program — what per-fault re-simulation baselines use to
    /// compile once per campaign instead of once per fault.
    pub fn with_tapes(design: &'d Design, tapes: &'d TapeProgram) -> Self {
        Self::build(design, Some(TapeRef::Shared(tapes)))
    }

    fn build(design: &'d Design, tapes: Option<TapeRef<'d>>) -> Self {
        let values = ValueStore::new(design);
        let edge_prev = design
            .signals()
            .iter()
            .map(|s| LogicVec::new_x(s.width))
            .collect();
        let mut sim = Simulator {
            design,
            tapes,
            values,
            edge_prev,
            rtl_dirty: vec![false; design.rtl_nodes().len()],
            rtl_queue: Vec::new(),
            beh_dirty: vec![false; design.behavioral_nodes().len()],
            beh_queue: Vec::new(),
            watch_changed: Vec::new(),
            watch_flag: vec![false; design.num_signals()],
            nba: Vec::new(),
            forces: Vec::new(),
            deltas: 0,
            probe: None,
            ctx: ExecCtx::new(),
            outcome: ExecOutcome::default(),
            ws_changed: Vec::new(),
            ws_activated: Vec::new(),
        };
        for i in 0..design.rtl_nodes().len() {
            sim.mark_rtl(RtlNodeId::from_index(i));
        }
        for (i, b) in design.behavioral_nodes().iter().enumerate() {
            if !b.sensitivity.is_edge() {
                sim.mark_beh(BehavioralId::from_index(i));
            }
        }
        sim.step();
        sim
    }

    /// The design being simulated.
    pub fn design(&self) -> &'d Design {
        self.design
    }

    /// The current value of a signal.
    pub fn value(&self, sig: SignalId) -> &LogicVec {
        self.values.get(sig)
    }

    /// The full value store.
    pub fn values(&self) -> &ValueStore {
        &self.values
    }

    /// Total delta cycles executed so far.
    pub fn deltas(&self) -> u64 {
        self.deltas
    }

    /// Drives a primary input (or, for testing, forces any signal) to
    /// `value`, by borrow — a width-matching value is committed straight
    /// from the caller's storage (no resize, no clone), an unchanged value
    /// skips the commit entirely, and a mismatched width resizes through a
    /// pooled temporary. Fanout is scheduled if the value changed; call
    /// [`Simulator::step`] to propagate.
    pub fn set_input(&mut self, sig: SignalId, value: &LogicVec) {
        let width = self.design.signal(sig).width;
        if value.width() == width {
            if self.forces.is_empty() && self.values.get(sig) == value {
                return;
            }
            self.commit_borrowed(sig, value);
            return;
        }
        let mut resized = self.ctx.scratch.take_for(width);
        resized.copy_resized(value, width);
        if !(self.forces.is_empty() && self.values.get(sig) == &resized) {
            self.commit_borrowed(sig, &resized);
        }
        self.ctx.scratch.put(resized);
    }

    /// Permanently forces one bit of a signal — the `force` command used by
    /// force-based fault injection (the paper's IFsim baseline). The force
    /// is applied immediately and re-applied on every subsequent write.
    pub fn add_force(&mut self, sig: SignalId, bit: u32, value: eraser_logic::LogicBit) {
        self.forces.push((sig, bit, value));
        let current = self.values.get(sig).clone();
        self.commit_value(sig, current);
    }

    /// Applies forces (if any) and commits an owned value, scheduling
    /// fanout on change.
    fn commit_value(&mut self, sig: SignalId, value: LogicVec) -> bool {
        self.commit_borrowed(sig, &value)
    }

    /// Applies forces (if any) and commits a borrowed value in place,
    /// scheduling fanout on change. The store slot's storage is reused, so
    /// steady-state commits never allocate.
    fn commit_borrowed(&mut self, sig: SignalId, value: &LogicVec) -> bool {
        let changed = if self.forces.is_empty() {
            self.values.commit(sig, value)
        } else {
            let mut forced = self.ctx.scratch.take_for(value.width());
            forced.assign_from(value);
            for &(fs, bit, b) in &self.forces {
                if fs == sig && bit < forced.width() {
                    forced.set_bit(bit, b);
                }
            }
            let changed = self.values.commit(sig, &forced);
            self.ctx.scratch.put(forced);
            changed
        };
        if changed {
            if let Some(p) = &mut self.probe {
                p.observe_commit(sig, self.values.get(sig));
            }
            self.schedule_fanout(sig);
        }
        changed
    }

    /// Runs delta cycles until the design is stable.
    ///
    /// # Panics
    ///
    /// Panics if the design fails to settle within an internal delta bound
    /// (an oscillation, which cannot arise from designs accepted by the
    /// frontend).
    pub fn step(&mut self) {
        for _ in 0..DELTA_LIMIT {
            self.deltas += 1;
            self.settle_active();
            let n_activated = self.detect_edges();
            for i in 0..n_activated {
                let b = self.ws_activated[i];
                self.run_behavioral(b);
            }
            let committed = self.commit_nba();
            if !committed
                && n_activated == 0
                && self.rtl_queue.is_empty()
                && self.beh_queue.is_empty()
            {
                return;
            }
        }
        panic!("design did not settle within {DELTA_LIMIT} delta cycles");
    }

    /// Convenience: one full clock cycle on `clk` (drive low, settle, drive
    /// high, settle) — one rising edge per call.
    pub fn clock_cycle(&mut self, clk: SignalId) {
        self.set_input(clk, &LogicVec::from_u64(1, 0));
        self.step();
        self.set_input(clk, &LogicVec::from_u64(1, 1));
        self.step();
    }

    /// Applies every step of a stimulus, settling after each. Values are
    /// read by borrow — the whole replay is clone-free.
    pub fn run_stimulus(&mut self, stim: &Stimulus) {
        for step in &stim.steps {
            for (sig, val) in step {
                self.set_input(*sig, val);
            }
            self.step();
        }
    }

    /// True if no queued work is pending — the settle-point condition under
    /// which snapshots are defined.
    pub fn is_settled(&self) -> bool {
        self.rtl_queue.is_empty()
            && self.beh_queue.is_empty()
            && self.nba.is_empty()
            && self.watch_changed.is_empty()
    }

    /// Captures the full settle-point state into `snap`, reusing its
    /// buffers (see [`SimSnapshot`]).
    ///
    /// # Panics
    ///
    /// Panics if called between [`Simulator::set_input`] and
    /// [`Simulator::step`] — snapshots are defined at settle points only.
    pub fn capture_into(&self, snap: &mut SimSnapshot) {
        assert!(self.is_settled(), "capture requires a settled simulator");
        assign_logic_slice(&mut snap.values, self.values.as_slice());
        assign_logic_slice(&mut snap.edge_prev, &self.edge_prev);
        snap.forces.clear();
        snap.forces.extend_from_slice(&self.forces);
        snap.deltas = self.deltas;
    }

    /// Restores a captured settle-point state, discarding all current state
    /// and pending work. The snapshot must come from a simulator over the
    /// same design.
    pub fn restore_from(&mut self, snap: &SimSnapshot) {
        self.values.restore_from_slice(&snap.values);
        assert_eq!(
            self.edge_prev.len(),
            snap.edge_prev.len(),
            "snapshot covers a different design"
        );
        for (slot, v) in self.edge_prev.iter_mut().zip(&snap.edge_prev) {
            slot.assign_from(v);
        }
        self.forces.clear();
        self.forces.extend_from_slice(&snap.forces);
        self.deltas = snap.deltas;
        // Re-establish the quiescent scheduling state the snapshot was
        // taken in.
        self.rtl_dirty.fill(false);
        self.rtl_queue.clear();
        self.beh_dirty.fill(false);
        self.beh_queue.clear();
        self.watch_flag.fill(false);
        self.watch_changed.clear();
        self.nba.clear();
    }

    // ---- internals ----

    fn mark_rtl(&mut self, id: RtlNodeId) {
        if !self.rtl_dirty[id.index()] {
            self.rtl_dirty[id.index()] = true;
            self.rtl_queue.push(id);
        }
    }

    fn mark_beh(&mut self, id: BehavioralId) {
        if !self.beh_dirty[id.index()] {
            self.beh_dirty[id.index()] = true;
            self.beh_queue.push(id);
        }
    }

    /// Schedules everything that reads `sig` after its value changed.
    fn schedule_fanout(&mut self, sig: SignalId) {
        for &n in self.design.rtl_fanout(sig) {
            self.mark_rtl(n);
        }
        for &b in self.design.level_fanout(sig) {
            self.mark_beh(b);
        }
        if !self.design.edge_fanout(sig).is_empty() && !self.watch_flag[sig.index()] {
            self.watch_flag[sig.index()] = true;
            self.watch_changed.push(sig);
        }
    }

    /// Evaluates dirty RTL nodes and level-sensitive behavioral nodes to a
    /// fixpoint.
    fn settle_active(&mut self) {
        let design = self.design;
        loop {
            if let Some(id) = self.rtl_queue.pop() {
                self.rtl_dirty[id.index()] = false;
                let node = design.rtl_node(id);
                let mut out = self.ctx.scratch.take_for(design.signal(node.output).width);
                match &self.tapes {
                    Some(t) => run_tape(
                        t.program().rtl(id.index()),
                        &self.values,
                        &mut self.ctx.tape,
                        &mut out,
                    ),
                    None => eval_rtl_node_into(
                        design,
                        node,
                        &self.values,
                        &mut self.ctx.scratch,
                        &mut out,
                    ),
                }
                self.commit_borrowed(node.output, &out);
                self.ctx.scratch.put(out);
                continue;
            }
            if let Some(id) = self.beh_queue.pop() {
                self.beh_dirty[id.index()] = false;
                self.run_behavioral(id);
                continue;
            }
            break;
        }
    }

    /// Executes one behavioral node: blocking results commit immediately,
    /// non-blocking writes are queued for the NBA region. Works entirely
    /// out of the reusable execution workspace.
    fn run_behavioral(&mut self, id: BehavioralId) {
        let design = self.design;
        let node = design.behavioral(id);
        let mut outcome = std::mem::take(&mut self.outcome);
        match self.probe.take() {
            Some(mut p) => {
                let mut mon = ProbeMonitor::new(&mut p, &node.vdg);
                self.exec_node(id, &mut mon, &mut outcome);
                self.probe = Some(p);
            }
            None => self.exec_node(id, &mut NoopMonitor, &mut outcome),
        }
        for (sig, val) in &outcome.blocking {
            self.commit_borrowed(*sig, val);
        }
        self.nba.append(&mut outcome.nba);
        self.outcome = outcome;
    }

    /// Executes one activation on the configured backend under `monitor`.
    fn exec_node<M: ExecMonitor + ?Sized>(
        &mut self,
        id: BehavioralId,
        monitor: &mut M,
        outcome: &mut ExecOutcome,
    ) {
        let design = self.design;
        let node = design.behavioral(id);
        match &self.tapes {
            Some(t) => execute_tape_into(
                design,
                node,
                t.program().behavioral(id.index()),
                &self.values,
                monitor,
                &mut self.ctx,
                outcome,
            ),
            None => execute_into(design, node, &self.values, monitor, &mut self.ctx, outcome),
        }
    }

    /// Deferred edge detection: compares watched signals against their
    /// last-latched values and collects the activated sequential nodes into
    /// `ws_activated`, returning their count.
    fn detect_edges(&mut self) -> usize {
        self.ws_activated.clear();
        std::mem::swap(&mut self.watch_changed, &mut self.ws_changed);
        let design = self.design;
        for i in 0..self.ws_changed.len() {
            let sig = self.ws_changed[i];
            self.watch_flag[sig.index()] = false;
            let prev = &self.edge_prev[sig.index()];
            let cur = self.values.get(sig);
            if prev == cur {
                continue;
            }
            // Event expressions on vectors use bit 0, per common simulator
            // behavior.
            let (prev0, cur0) = (prev.bit_or_x(0), cur.bit_or_x(0));
            for &b in design.edge_fanout(sig) {
                if self.ws_activated.contains(&b) {
                    continue;
                }
                let node = design.behavioral(b);
                if let Sensitivity::Edges(edges) = &node.sensitivity {
                    let fired = edges
                        .iter()
                        .any(|(kind, s)| *s == sig && kind.matches(prev0, cur0));
                    if fired {
                        self.ws_activated.push(b);
                    }
                }
            }
            self.edge_prev[sig.index()].assign_from(self.values.get(sig));
        }
        self.ws_changed.clear();
        self.ws_activated.len()
    }

    /// Commits queued non-blocking writes in order; returns whether any
    /// signal changed.
    fn commit_nba(&mut self) -> bool {
        if self.nba.is_empty() {
            return false;
        }
        let mut writes = std::mem::take(&mut self.nba);
        let mut any = false;
        for w in writes.drain(..) {
            // Per-target temporary at the target's storage class, and the
            // write's own value buffer recycled afterwards: on wide designs
            // these are the boxed buffers, and dropping them here (or
            // letting one shared temporary shrink to the next narrow
            // target) would force a fresh allocation every time a >64-bit
            // signal commits.
            let width = self.design.signal(w.target).width;
            let mut next = self.ctx.scratch.take_for(width);
            next.assign_from(self.values.get(w.target));
            w.apply_assign(&mut next);
            if self.commit_borrowed(w.target, &next) {
                any = true;
            }
            self.ctx.scratch.put(next);
            self.ctx.scratch.put(w.value);
        }
        self.nba = writes;
        any
    }
}

impl ReplaySim for Simulator<'_> {
    fn capture_into(&self, snap: &mut SimSnapshot) {
        Simulator::capture_into(self, snap);
    }

    fn restore_from(&mut self, snap: &SimSnapshot) {
        Simulator::restore_from(self, snap);
    }

    fn replay_step(&mut self, changes: &[(SignalId, LogicVec)]) {
        for (sig, v) in changes {
            self.set_input(*sig, v);
        }
        self.step();
    }

    fn signal_value(&self, sig: SignalId) -> &LogicVec {
        self.value(sig)
    }

    fn force_bit(&mut self, sig: SignalId, bit: u32, value: eraser_logic::LogicBit) {
        self.add_force(sig, bit, value);
        self.step();
    }

    fn attach_probe(&mut self, mut probe: SiteProbe) {
        probe.observe_initial(self.design, &self.values);
        self.probe = Some(Box::new(probe));
    }

    fn take_probe(&mut self) -> Option<SiteProbe> {
        self.probe.take().map(|p| *p)
    }

    fn begin_probe_step(&mut self, step: usize) {
        if let Some(p) = &mut self.probe {
            p.begin_step(step);
        }
    }

    fn fully_defined(&self) -> bool {
        self.values.fully_defined()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eraser_frontend::compile;

    fn v(w: u32, x: u64) -> LogicVec {
        LogicVec::from_u64(w, x)
    }

    #[test]
    fn combinational_propagation() {
        let d = compile(
            "module m(input wire [3:0] a, input wire [3:0] b, output wire [3:0] x);
               wire [3:0] t;
               assign t = a & b;
               assign x = t | 4'h1;
             endmodule",
            None,
        )
        .unwrap();
        let a = d.find_signal("a").unwrap();
        let b = d.find_signal("b").unwrap();
        let x = d.find_signal("x").unwrap();
        let mut sim = Simulator::new(&d);
        sim.set_input(a, &v(4, 0xc));
        sim.set_input(b, &v(4, 0xa));
        sim.step();
        assert_eq!(sim.value(x).to_u64(), Some(0x9));
    }

    #[test]
    fn counter_counts() {
        let d = compile(
            "module m(input wire clk, input wire rst, output reg [7:0] q);
               always @(posedge clk) begin
                 if (rst) q <= 8'h00; else q <= q + 8'h01;
               end
             endmodule",
            None,
        )
        .unwrap();
        let clk = d.find_signal("clk").unwrap();
        let rst = d.find_signal("rst").unwrap();
        let q = d.find_signal("q").unwrap();
        let mut sim = Simulator::new(&d);
        sim.set_input(rst, &v(1, 1));
        sim.clock_cycle(clk);
        assert_eq!(sim.value(q).to_u64(), Some(0));
        sim.set_input(rst, &v(1, 0));
        for _ in 0..3 {
            sim.clock_cycle(clk);
        }
        assert_eq!(sim.value(q).to_u64(), Some(3));
    }

    #[test]
    fn nba_swap_is_race_free() {
        let d = compile(
            "module m(input wire clk, input wire ld, input wire [3:0] a,
                      output reg [3:0] x, output reg [3:0] y);
               always @(posedge clk) begin
                 if (ld) begin x <= a; y <= 4'h0; end
                 else begin x <= y; y <= x; end
               end
             endmodule",
            None,
        )
        .unwrap();
        let clk = d.find_signal("clk").unwrap();
        let ld = d.find_signal("ld").unwrap();
        let a = d.find_signal("a").unwrap();
        let x = d.find_signal("x").unwrap();
        let y = d.find_signal("y").unwrap();
        let mut sim = Simulator::new(&d);
        sim.set_input(ld, &v(1, 1));
        sim.set_input(a, &v(4, 9));
        sim.clock_cycle(clk);
        sim.set_input(ld, &v(1, 0));
        sim.clock_cycle(clk);
        // Swapped simultaneously through NBAs.
        assert_eq!(sim.value(x).to_u64(), Some(0));
        assert_eq!(sim.value(y).to_u64(), Some(9));
        sim.clock_cycle(clk);
        assert_eq!(sim.value(x).to_u64(), Some(9));
        assert_eq!(sim.value(y).to_u64(), Some(0));
    }

    #[test]
    fn async_reset_fires_on_negedge() {
        let d = compile(
            "module m(input wire clk, input wire rst_n, input wire [3:0] a, output reg [3:0] q);
               always @(posedge clk or negedge rst_n) begin
                 if (!rst_n) q <= 4'h0; else q <= a;
               end
             endmodule",
            None,
        )
        .unwrap();
        let clk = d.find_signal("clk").unwrap();
        let rst_n = d.find_signal("rst_n").unwrap();
        let a = d.find_signal("a").unwrap();
        let q = d.find_signal("q").unwrap();
        let mut sim = Simulator::new(&d);
        // Drop reset without any clock: q clears asynchronously.
        sim.set_input(rst_n, &v(1, 0));
        sim.step();
        assert_eq!(sim.value(q).to_u64(), Some(0));
        sim.set_input(rst_n, &v(1, 1));
        sim.set_input(a, &v(4, 7));
        sim.clock_cycle(clk);
        assert_eq!(sim.value(q).to_u64(), Some(7));
    }

    #[test]
    fn comb_always_reacts_to_inputs() {
        let d = compile(
            "module m(input wire [1:0] s, input wire [3:0] a, input wire [3:0] b,
                      output reg [3:0] y);
               always @(*) begin
                 case (s)
                   2'd0: y = a;
                   2'd1: y = b;
                   default: y = a ^ b;
                 endcase
               end
             endmodule",
            None,
        )
        .unwrap();
        let s = d.find_signal("s").unwrap();
        let a = d.find_signal("a").unwrap();
        let b = d.find_signal("b").unwrap();
        let y = d.find_signal("y").unwrap();
        let mut sim = Simulator::new(&d);
        sim.set_input(a, &v(4, 0x3));
        sim.set_input(b, &v(4, 0x5));
        sim.set_input(s, &v(2, 0));
        sim.step();
        assert_eq!(sim.value(y).to_u64(), Some(3));
        sim.set_input(s, &v(2, 1));
        sim.step();
        assert_eq!(sim.value(y).to_u64(), Some(5));
        sim.set_input(s, &v(2, 2));
        sim.step();
        assert_eq!(sim.value(y).to_u64(), Some(6));
    }

    #[test]
    fn pipeline_through_hierarchy() {
        let d = compile(
            "module stage(input wire clk, input wire [7:0] din, output reg [7:0] dout);
               always @(posedge clk) dout <= din + 8'h01;
             endmodule
             module top(input wire clk, input wire [7:0] din, output wire [7:0] dout);
               wire [7:0] mid;
               stage s0 (.clk(clk), .din(din), .dout(mid));
               stage s1 (.clk(clk), .din(mid), .dout(dout));
             endmodule",
            None,
        )
        .unwrap();
        let clk = d.find_signal("clk").unwrap();
        let din = d.find_signal("din").unwrap();
        let dout = d.find_signal("dout").unwrap();
        let mut sim = Simulator::new(&d);
        sim.set_input(din, &v(8, 10));
        sim.clock_cycle(clk);
        sim.clock_cycle(clk);
        assert_eq!(sim.value(dout).to_u64(), Some(12));
    }

    #[test]
    fn tape_backend_matches_tree_backend_in_lockstep() {
        use eraser_ir::EvalBackend;
        // RTL nodes, a casez decoder, dynamic bit writes and NBAs — every
        // evaluation path the tape backend serves, compared signal-for-
        // signal against the tree walker after every settle step.
        let d = compile(
            "module m(input wire clk, input wire rst, input wire [3:0] a,
                      input wire [2:0] i, output reg [7:0] q, output wire [7:0] w);
               reg [7:0] acc;
               assign w = (acc << a[1:0]) ^ {a, a};
               always @(posedge clk) begin
                 if (rst) begin acc <= 8'h00; q <= 8'h00; end
                 else begin
                   casez (a)
                     4'b1???: acc <= acc + {4'h0, a};
                     4'b01??: acc <= acc ^ 8'h3c;
                     default: acc <= acc - 8'h01;
                   endcase
                   q[i] <= a[0];
                 end
               end
             endmodule",
            None,
        )
        .unwrap();
        let sigs: Vec<_> = ["clk", "rst", "a", "i", "q", "w", "acc"]
            .iter()
            .map(|n| d.find_signal(n).unwrap())
            .collect();
        let (clk, rst, a, i) = (sigs[0], sigs[1], sigs[2], sigs[3]);
        let mut tree = Simulator::with_backend(&d, EvalBackend::Tree);
        let mut tape = Simulator::with_backend(&d, EvalBackend::Tape);
        let drive = |tree: &mut Simulator, tape: &mut Simulator, sig, val: &LogicVec| {
            tree.set_input(sig, val);
            tree.step();
            tape.set_input(sig, val);
            tape.step();
        };
        drive(&mut tree, &mut tape, rst, &v(1, 1));
        for cycle in 0..24u64 {
            drive(&mut tree, &mut tape, a, &v(4, cycle * 7 % 16));
            drive(&mut tree, &mut tape, i, &v(3, cycle * 3 % 8));
            if cycle == 1 {
                drive(&mut tree, &mut tape, rst, &v(1, 0));
            }
            drive(&mut tree, &mut tape, clk, &v(1, 0));
            drive(&mut tree, &mut tape, clk, &v(1, 1));
            for &s in &sigs {
                assert_eq!(tree.value(s), tape.value(s), "cycle {cycle}");
            }
        }
    }
}
