//! Snapshot round-trip property: capturing a settle-point state and
//! restoring it — into the same simulator later, or into a different
//! (even dirty) simulator instance — must make continued stepping
//! bit-identical to the uninterrupted run, on random stimuli, for both
//! evaluation backends.

use eraser_frontend::compile;
use eraser_ir::{Design, EvalBackend, SignalId};
use eraser_logic::LogicVec;
use eraser_sim::{ReplaySim, SimSnapshot, Simulator};

/// Deterministic xorshift over the test's seed space.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

const DESIGNS: &[&str] = &[
    // Sequential counter + async-ish mix of comb logic.
    "module d0(input wire clk, input wire rst, input wire [3:0] a,
               output reg [7:0] acc, output wire [7:0] mix);
       wire [7:0] ext;
       assign ext = {a, a};
       assign mix = acc ^ ext;
       always @(posedge clk) begin
         if (rst) acc <= 8'h00; else acc <= acc + ext;
       end
     endmodule",
    // Behavioral decode with casez, dynamic bit writes, NBAs and locals.
    "module d1(input wire clk, input wire rst, input wire [3:0] a,
               input wire [2:0] i, output reg [7:0] q, output wire [7:0] w);
       reg [7:0] acc;
       assign w = (acc << a[1:0]) ^ {a, a};
       always @(posedge clk) begin
         if (rst) begin acc <= 8'h00; q <= 8'h00; end
         else begin
           casez (a)
             4'b1???: acc <= acc + {4'h0, a};
             4'b01??: acc <= acc ^ 8'h3c;
             default: acc <= acc - 8'h01;
           endcase
           q[i] <= a[0];
         end
       end
     endmodule",
    // Level-sensitive always with a for loop.
    "module d2(input wire clk, input wire [7:0] a, output reg [7:0] y,
               output reg [7:0] acc);
       integer k;
       always @(*) begin
         y = 8'h00;
         for (k = 0; k < 8; k = k + 1)
           y[k] = a[k] ^ a[(k + 1) % 8];
       end
       always @(posedge clk) acc <= acc + y;
     endmodule",
];

/// Builds the per-step input changes of a random clocked stimulus.
fn random_steps(design: &Design, seed: u64, cycles: usize) -> Vec<Vec<(SignalId, LogicVec)>> {
    let clk = design.find_signal("clk").unwrap();
    let rst = design.find_signal("rst");
    let data: Vec<SignalId> = design
        .inputs()
        .iter()
        .copied()
        .filter(|s| *s != clk && Some(*s) != rst)
        .collect();
    let mut state = seed | 1;
    let mut steps = Vec::new();
    for cycle in 0..cycles {
        let mut low = vec![(clk, LogicVec::from_u64(1, 0))];
        if let Some(r) = rst {
            low.push((r, LogicVec::from_u64(1, (cycle < 2) as u64)));
        }
        for &d in &data {
            let w = design.signal(d).width;
            low.push((d, LogicVec::from_u64(w, xorshift(&mut state))));
        }
        steps.push(low);
        steps.push(vec![(clk, LogicVec::from_u64(1, 1))]);
    }
    steps
}

/// Asserts two simulators agree on every signal of the design.
fn assert_state_eq(design: &Design, a: &Simulator, b: &Simulator, ctx: &str) {
    for i in 0..design.num_signals() {
        let s = SignalId::from_index(i);
        assert_eq!(
            a.value(s),
            b.value(s),
            "{ctx}: signal `{}` diverged",
            design.signal(s).name
        );
    }
}

#[test]
fn capture_restore_continue_is_bit_identical() {
    for (di, src) in DESIGNS.iter().enumerate() {
        let design = compile(src, None).unwrap();
        for backend in [EvalBackend::Tree, EvalBackend::Tape] {
            for seed in [3u64, 1337, 0xdead_beef] {
                let steps = random_steps(&design, seed ^ (di as u64) << 32, 14);
                // Reference: uninterrupted run, recording full state lazily
                // via a twin that is checkpointed at every step.
                let mut reference = Simulator::with_backend(&design, backend);
                let mut subject = Simulator::with_backend(&design, backend);
                // A dirty third instance that ran something else entirely:
                // restoring into it must fully overwrite its state.
                let mut dirty = Simulator::with_backend(&design, backend);
                for step in steps.iter().rev().take(5) {
                    dirty.replay_step(step);
                }

                let mut snap = SimSnapshot::new();
                for (si, step) in steps.iter().enumerate() {
                    reference.replay_step(step);
                    subject.replay_step(step);
                    if si % 5 == di % 5 {
                        // Round-trip through a snapshot mid-run: capture,
                        // perturb nothing, restore, continue.
                        subject.capture_into(&mut snap);
                        subject.restore_from(&snap);
                        assert_state_eq(&design, &reference, &subject, "self-roundtrip");
                        assert_eq!(reference.deltas(), subject.deltas(), "delta counter");
                        // And hydrate the dirty instance from the same
                        // snapshot; it becomes the new subject.
                        dirty.restore_from(&snap);
                        assert_state_eq(&design, &reference, &dirty, "dirty-restore");
                        std::mem::swap(&mut subject, &mut dirty);
                    }
                }
                assert_state_eq(&design, &reference, &subject, "end of run");
            }
        }
    }
}

#[test]
fn restored_run_matches_suffix_of_full_run() {
    // Capture at step k, replay only the suffix on a fresh simulator, and
    // compare signal-for-signal against the full run after every step.
    let design = compile(DESIGNS[1], None).unwrap();
    for backend in [EvalBackend::Tree, EvalBackend::Tape] {
        let steps = random_steps(&design, 99, 12);
        for k in [4usize, 9, 15] {
            let mut full = Simulator::with_backend(&design, backend);
            let mut snap = SimSnapshot::new();
            for (si, step) in steps.iter().enumerate() {
                if si == k {
                    full.capture_into(&mut snap);
                }
                full.replay_step(step);
            }
            let mut resumed = Simulator::with_backend(&design, backend);
            resumed.restore_from(&snap);
            let mut twin = Simulator::with_backend(&design, backend);
            for (si, step) in steps.iter().enumerate() {
                twin.replay_step(step);
                if si >= k {
                    resumed.replay_step(step);
                    assert_state_eq(&design, &twin, &resumed, "suffix step");
                }
            }
            assert_state_eq(&design, &twin, &full, "full twin");
        }
    }
}

#[test]
fn forces_are_part_of_the_snapshot() {
    let design = compile(DESIGNS[0], None).unwrap();
    let acc = design.find_signal("acc").unwrap();
    let steps = random_steps(&design, 7, 8);
    let mut sim = Simulator::new(&design);
    for step in &steps[..6] {
        sim.replay_step(step);
    }
    let mut snap = SimSnapshot::new();
    sim.capture_into(&mut snap);
    // Force a bit, then restore: the force must be gone again.
    sim.force_bit(acc, 0, eraser_logic::LogicBit::One);
    assert_eq!(sim.value(acc).bit_or_x(0), eraser_logic::LogicBit::One);
    sim.restore_from(&snap);
    let mut twin = Simulator::new(&design);
    for step in &steps[..6] {
        twin.replay_step(step);
    }
    assert_state_eq(&design, &twin, &sim, "force removed by restore");
    // Conversely, a snapshot taken *with* a force restores the force.
    sim.force_bit(acc, 1, eraser_logic::LogicBit::Zero);
    sim.capture_into(&mut snap);
    let mut other = Simulator::new(&design);
    other.restore_from(&snap);
    for step in &steps[6..] {
        sim.replay_step(step);
        other.replay_step(step);
    }
    assert_state_eq(&design, &sim, &other, "forced snapshot");
}
