//! ERASER: efficient RTL fault simulation with trimmed execution redundancy.
//!
//! Umbrella crate re-exporting the full framework — a Rust reproduction of
//! the DATE 2025 paper "ERASER: Efficient RTL FAult Simulation Framework
//! with Trimmed Execution Redundancy":
//!
//! * [`logic`] — four-state values,
//! * [`ir`] — the RTL graph IR with CFG/VDG analyses,
//! * [`frontend`] — the Verilog-subset compiler,
//! * [`sim`] — the event-driven kernel and good simulator,
//! * [`fault`] — stuck-at fault model and coverage,
//! * [`core`] — the ERASER concurrent engine (the paper's contribution)
//!   and the engine-agnostic campaign API
//!   ([`FaultSimEngine`](core::FaultSimEngine),
//!   [`CampaignRunner`](core::CampaignRunner),
//!   [`EngineResult`](core::EngineResult)),
//! * [`baselines`] — IFsim / VFsim / CfSim comparison engines behind the
//!   same trait ([`all_engines`](baselines::all_engines) returns the full
//!   Fig. 6 line-up),
//! * [`netlist`] — zero-dependency Yosys-JSON netlist intake,
//! * [`designs`] — the ten-benchmark suite with stimuli and golden
//!   models, plus the [`designs::DesignSource`] layer that resolves
//!   benchmarks, external Verilog files, Yosys-JSON netlists, and the
//!   bundled gate-level fixtures into one campaign-ready bundle,
//! * [`service`] — the campaign service: a
//!   [`CampaignSpec`](core::CampaignSpec)-driven job queue with worker
//!   pool and cross-campaign caches, pluggable result stores (in-memory
//!   or crash-recovering on-disk journal), and a dependency-free
//!   HTTP/JSON front end ([`service::HttpServer`]).
//!
//! # Quickstart
//!
//! ```
//! use eraser::core::{run_campaign, CampaignConfig, RedundancyMode};
//! use eraser::designs::Benchmark;
//! use eraser::fault::generate_faults;
//!
//! let design = Benchmark::Apb.build();
//! let faults = generate_faults(&design, &Benchmark::Apb.fault_config());
//! let stim = Benchmark::Apb.stimulus_with_cycles(&design, 60);
//! let result = run_campaign(&design, &faults, &stim, &CampaignConfig {
//!     mode: RedundancyMode::Full,
//!     drop_detected: true,
//!     ..Default::default()
//! });
//! println!("coverage: {}", result.coverage);
//! # assert!(result.coverage.detected() > 0);
//! ```
//!
//! # Parallel campaigns
//!
//! Campaigns fan out over the fault dimension: the universe is
//! [partitioned](fault::FaultList::partition) into disjoint shards, a
//! scoped-thread pool drains the shard queue, and the merged coverage is
//! **bit-identical** to the serial run at any thread count. Set
//! [`CampaignConfig::parallel`](core::CampaignConfig) (or the
//! `ERASER_THREADS` / `ERASER_PARTITION` environment variables, which the
//! default config honors), or wrap any engine in
//! [`core::Parallel`]:
//!
//! ```
//! use eraser::core::{run_campaign, CampaignConfig, ParallelConfig};
//! use eraser::designs::Benchmark;
//! use eraser::fault::generate_faults;
//!
//! let design = Benchmark::Apb.build();
//! let faults = generate_faults(&design, &Benchmark::Apb.fault_config());
//! let stim = Benchmark::Apb.stimulus_with_cycles(&design, 60);
//! let serial = run_campaign(&design, &faults, &stim, &CampaignConfig::serial());
//! let parallel = run_campaign(&design, &faults, &stim, &CampaignConfig {
//!     parallel: ParallelConfig::with_threads(4),
//!     ..CampaignConfig::serial()
//! });
//! assert_eq!(serial.coverage, parallel.coverage); // bit-identical
//! ```
//!
//! # Comparing engines
//!
//! Every engine — ERASER in all three ablation modes and the three
//! baselines — is driven through the [`core::FaultSimEngine`] trait, so a
//! campaign can enumerate them against identical inputs:
//!
//! ```
//! use eraser::baselines::all_engines;
//! use eraser::core::CampaignRunner;
//! use eraser::designs::Benchmark;
//! use eraser::fault::generate_faults;
//!
//! let design = Benchmark::Alu64.build();
//! let faults = generate_faults(&design, &Benchmark::Alu64.fault_config());
//! let stim = Benchmark::Alu64.stimulus_with_cycles(&design, 20);
//! let runner = CampaignRunner::new(&design, &faults, &stim);
//! let results = runner.run_all(&all_engines());
//! CampaignRunner::check_parity(&results)?;
//! # assert_eq!(results.len(), 4);
//! # Ok::<(), eraser::core::ParityMismatch>(())
//! ```

pub use eraser_baselines as baselines;
pub use eraser_core as core;
pub use eraser_designs as designs;
pub use eraser_fault as fault;
pub use eraser_frontend as frontend;
pub use eraser_ir as ir;
pub use eraser_logic as logic;
pub use eraser_netlist as netlist;
pub use eraser_service as service;
pub use eraser_sim as sim;
