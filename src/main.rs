//! `eraser` — command-line RTL fault simulation and the campaign server.
//!
//! Two modes:
//!
//! * **Run** (default): load a design — a Verilog-subset file, a
//!   Yosys-JSON netlist (`.json`, the output of
//!   `yosys -p 'prep; write_json design.json'`), or a `--spec` campaign
//!   file naming a benchmark/fixture/path — generate per-bit stuck-at
//!   faults, run an ERASER campaign, and print coverage plus the
//!   redundancy breakdown.
//! * **Serve**: `eraser serve` starts the HTTP/JSON campaign service
//!   (`POST /campaigns`, `GET /campaigns/:id`, `GET /campaigns/:id/result`,
//!   `GET /healthz`) with a bounded job queue, a worker pool, and a
//!   pluggable result store (`--store mem` or `--store journal:PATH`).
//!
//! ```text
//! eraser <file.v|file.json> [flags]     run a file design
//! eraser --spec FILE.json [flags]       run a campaign spec
//! eraser serve [--addr A] [--workers N] [--queue N] [--store S]
//! ```
//!
//! Every knob resolves through one precedence rule, lowest to highest:
//! built-in default < `ERASER_*` environment < CLI flag < explicit spec
//! field ([`CampaignSpec`] is the single implementation — flags merge
//! into fields the spec file left unset, and `resolve()` falls through
//! unset fields to the environment).
//!
//! Errors are uniform: every failure prints one `error: ...` line to
//! stderr; usage mistakes (unknown flag, missing value, bad number) exit
//! 2 with the usage text, runtime failures (unreadable file, import
//! error, bad spec) exit 1.

use eraser::core::{run_campaign, CampaignSpec, RedundancyMode};
use eraser::fault::PartitionStrategy;
use eraser::ir::EvalBackend;
use eraser::netlist::json;
use eraser::service::{open_store, prepare_spec, CampaignService, HttpServer};
use std::process::ExitCode;

const USAGE: &str = "usage: eraser <file.v|file.json> [--top NAME] [--stimulus-steps N] [--clock NAME] [--reset NAME]
              [--mode full|explicit|none] [--max-faults N] [--seed N] [--list-undetected]
              [--threads N] [--partition contiguous|round-robin|site-affinity|window-affinity]
              [--eval tree|tape] [--checkpoint-interval N] [--batch] [--collapse]
       eraser --spec FILE.json [same flags; the spec's explicit fields win]
       eraser serve [--addr HOST:PORT] [--workers N] [--queue N] [--store mem|journal:PATH]";

/// A usage mistake: `error:` line, usage text, exit 2.
fn fail_usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// CLI knob flags, all optional — merged into the campaign spec with
/// lower precedence than the spec file's own fields.
#[derive(Default)]
struct Flags {
    top: Option<String>,
    clock: Option<String>,
    reset: Option<String>,
    steps: Option<usize>,
    seed: Option<u64>,
    mode: Option<RedundancyMode>,
    max_faults: Option<usize>,
    threads: Option<usize>,
    partition: Option<PartitionStrategy>,
    eval: Option<EvalBackend>,
    checkpoint_interval: Option<usize>,
    batch: bool,
    collapse: bool,
    list_undetected: bool,
}

fn need(flag: &str, value: Option<String>) -> String {
    value.unwrap_or_else(|| fail_usage(&format!("{flag} needs a value")))
}

fn need_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let text = need(flag, value);
    text.parse()
        .unwrap_or_else(|_| fail_usage(&format!("{flag}: `{text}` is not a valid number")))
}

fn parse_enum<T>(flag: &str, value: Option<String>) -> T
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let text = need(flag, value);
    text.parse()
        .unwrap_or_else(|e: T::Err| fail_usage(&e.to_string()))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        args.remove(0);
        return serve(args);
    }

    let mut flags = Flags::default();
    let mut file: Option<String> = None;
    let mut spec_file: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => spec_file = Some(need("--spec", it.next())),
            "--top" => flags.top = Some(need("--top", it.next())),
            "--clock" => flags.clock = Some(need("--clock", it.next())),
            "--reset" => flags.reset = Some(need("--reset", it.next())),
            "--cycles" | "--stimulus-steps" => {
                flags.steps = Some(need_num("--stimulus-steps", it.next()))
            }
            "--seed" => flags.seed = Some(need_num("--seed", it.next())),
            "--mode" => flags.mode = Some(parse_enum("--mode", it.next())),
            "--max-faults" => flags.max_faults = Some(need_num("--max-faults", it.next())),
            "--threads" => flags.threads = Some(need_num("--threads", it.next())),
            "--partition" => flags.partition = Some(parse_enum("--partition", it.next())),
            "--eval" => flags.eval = Some(parse_enum("--eval", it.next())),
            "--checkpoint-interval" => {
                flags.checkpoint_interval = Some(need_num("--checkpoint-interval", it.next()))
            }
            "--batch" => flags.batch = true,
            "--collapse" => flags.collapse = true,
            "--list-undetected" => flags.list_undetected = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if !arg.starts_with('-') && file.is_none() => file = Some(arg),
            _ => fail_usage(&format!("unknown argument `{arg}`")),
        }
    }

    let spec = match build_spec(file, spec_file, &flags) {
        Ok(spec) => spec,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&spec, flags.list_undetected) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the campaign spec: from `--spec` (flags merge into fields the
/// file left unset) or from a positional design file (flags fill the
/// spec directly).
fn build_spec(
    file: Option<String>,
    spec_file: Option<String>,
    flags: &Flags,
) -> Result<CampaignSpec, String> {
    let (mut spec, explicit_keys) = match (spec_file, file) {
        (Some(path), None) => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let spec = CampaignSpec::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            // Which keys the file set explicitly — those outrank flags
            // even for the spec's non-optional fields (seed, mode, ...).
            let keys: Vec<String> = json::parse(&text)
                .ok()
                .and_then(|v| {
                    v.as_obj()
                        .map(|o| o.iter().map(|(k, _)| k.clone()).collect())
                })
                .unwrap_or_default();
            (spec, keys)
        }
        (None, Some(path)) => (CampaignSpec::path(path), Vec::new()),
        (Some(_), Some(_)) => {
            return Err("give either a design file or --spec, not both".to_string())
        }
        (None, None) => fail_usage("no design file or --spec given"),
    };
    let unset = |key: &str| !explicit_keys.iter().any(|k| k == key);
    if flags.top.is_some() && unset("top") {
        spec.top = flags.top.clone();
    }
    if flags.clock.is_some() && unset("clock") {
        spec.clock = flags.clock.clone();
    }
    if flags.reset.is_some() && unset("reset") {
        spec.reset = flags.reset.clone();
    }
    if let (Some(seed), true) = (flags.seed, unset("seed")) {
        spec.seed = seed;
    }
    if flags.steps.is_some() && unset("steps") {
        spec.steps = flags.steps;
    }
    if let (Some(mode), true) = (flags.mode, unset("mode")) {
        spec.mode = mode;
    }
    if flags.max_faults.is_some() && unset("max_faults") {
        spec.max_faults = flags.max_faults;
    }
    if flags.threads.is_some() && unset("threads") {
        spec.threads = flags.threads;
    }
    if flags.partition.is_some() && unset("partition") {
        spec.partition = flags.partition;
    }
    if flags.eval.is_some() && unset("eval") {
        spec.backend = flags.eval;
    }
    if flags.checkpoint_interval.is_some() && unset("checkpoint_interval") {
        spec.checkpoint_interval = flags.checkpoint_interval;
    }
    if flags.batch && unset("batch") {
        spec.batch = Some(true);
    }
    if flags.collapse && unset("collapse") {
        spec.collapse = Some(true);
    }
    Ok(spec)
}

/// Runs one campaign from a resolved spec and prints the report.
fn run(spec: &CampaignSpec, list_undetected: bool) -> Result<(), String> {
    // One resolution rule for benchmark names, fixtures, and files —
    // shared with the campaign service's workers.
    let prep = prepare_spec(spec)?;
    let design = prep.source.design();
    let config = spec.resolve();

    println!(
        "{}: {} signals, {} RTL nodes, {} behavioral nodes, {} faults, {} steps",
        design.name(),
        design.num_signals(),
        design.rtl_nodes().len(),
        design.behavioral_nodes().len(),
        prep.faults.len(),
        prep.stimulus.steps.len(),
    );
    if config.parallel.is_parallel() {
        println!("parallel: {}", config.parallel);
    }
    if config.checkpoint.is_enabled() {
        println!(
            "checkpointing: {} (window-aware schedule: shard engines resume \
             from shared good-state snapshots)",
            config.checkpoint
        );
    }
    if config.batch.enabled {
        println!("batching: 64-wide bit-parallel RTL evaluation");
    }
    if config.collapse.enabled {
        println!("collapsing: static equivalence folding before simulation");
    }
    let result = run_campaign(design, &prep.faults, &prep.stimulus, &config);
    println!(
        "mode {} ({} backend): coverage {}",
        config.mode, config.backend, result.coverage
    );
    let s = &result.stats;
    println!(
        "behavioral: {} activations, {} faulty executions of {} opportunities",
        s.good_activations, s.fault_executions, s.opportunities
    );
    println!(
        "eliminated: {} explicit ({:.1}%), {} implicit ({:.1}%)",
        s.explicit_skipped,
        s.explicit_percent(),
        s.implicit_skipped,
        s.implicit_percent()
    );
    if config.batch.enabled {
        let occupancy = if s.batch_groups > 0 {
            100.0 * s.batch_lanes as f64 / (s.batch_groups * 64) as f64
        } else {
            0.0
        };
        println!(
            "batch: {} groups at {:.1}% lane occupancy, {} scalar fallbacks",
            s.batch_groups, occupancy, s.batch_scalar_fallbacks
        );
    }
    if config.collapse.enabled {
        println!(
            "collapse: {} classes simulated for {} faults ({} folded, {} dropped as undetectable)",
            s.collapse_classes,
            prep.faults.len(),
            s.collapsed_faults,
            s.collapse_dropped
        );
    }
    if list_undetected {
        for id in result.coverage.undetected() {
            let f = prep.faults.fault(id);
            println!(
                "undetected: {} bit {} {}",
                design.signal(f.signal).name,
                f.bit,
                f.stuck
            );
        }
    }
    Ok(())
}

/// The `serve` subcommand: start the campaign service and block.
fn serve(args: Vec<String>) -> ExitCode {
    let mut addr = "127.0.0.1:3939".to_string();
    let mut workers: usize = 2;
    let mut queue: usize = 64;
    let mut store_sel = "mem".to_string();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = need("--addr", it.next()),
            "--workers" => workers = need_num("--workers", it.next()),
            "--queue" => queue = need_num("--queue", it.next()),
            "--store" => store_sel = need("--store", it.next()),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => fail_usage(&format!("unknown argument `{arg}`")),
        }
    }
    let store = match open_store(&store_sel) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let service = CampaignService::new(store, workers, queue);
    let server = match HttpServer::bind(&addr, service.handle()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "eraser service listening on http://{} ({} workers, queue {}, store {})",
        server.local_addr(),
        workers,
        queue,
        store_sel
    );
    // Serve until killed: the accept loop and workers run on their own
    // threads; this thread just sleeps.
    loop {
        std::thread::park();
    }
}
