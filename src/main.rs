//! `eraser` — command-line RTL fault simulation.
//!
//! Compiles a Verilog-subset file, generates per-bit stuck-at faults, runs
//! an ERASER fault-simulation campaign against a generated clocked random
//! stimulus, and prints coverage plus the redundancy breakdown.
//!
//! ```text
//! eraser <file.v> [--top NAME] [--cycles N] [--clock NAME] [--reset NAME]
//!        [--mode full|explicit|none] [--max-faults N] [--seed N] [--list-undetected]
//!        [--threads N] [--partition contiguous|round-robin|site-affinity|window-affinity]
//!        [--eval tree|tape] [--checkpoint-interval N] [--batch] [--collapse]
//! ```
//!
//! `--threads N` runs the campaign fault-parallel over N worker threads
//! (0 = one per hardware thread); `--partition` picks the fault-sharding
//! strategy; `--eval` selects the expression-evaluation backend (the tree
//! walker or compiled instruction tapes); `--batch` evaluates batchable
//! RTL nodes for up to 64 faults at once (bit-parallel fault batching);
//! `--collapse` statically collapses the fault universe (equivalence
//! classes plus provably-undetectable drops) before simulating. Defaults
//! come from `ERASER_THREADS` / `ERASER_PARTITION` / `ERASER_EVAL` /
//! `ERASER_BATCH` / `ERASER_COLLAPSE`. Coverage is bit-identical at any
//! thread count, on either backend, and with batching or collapsing on or
//! off.

use eraser::core::{
    run_campaign, BatchConfig, CampaignConfig, CheckpointConfig, CollapseConfig, EvalBackend,
    ParallelConfig, RedundancyMode,
};
use eraser::fault::{generate_faults, FaultListConfig, PartitionStrategy};
use eraser::frontend::compile;
use eraser::ir::Design;
use eraser::logic::LogicVec;
use eraser::sim::StimulusBuilder;
use std::process::ExitCode;

struct Options {
    file: String,
    top: Option<String>,
    cycles: usize,
    clock: Option<String>,
    reset: Option<String>,
    mode: RedundancyMode,
    max_faults: Option<usize>,
    seed: u64,
    list_undetected: bool,
    parallel: ParallelConfig,
    backend: EvalBackend,
    checkpoint: CheckpointConfig,
    batch: BatchConfig,
    collapse: CollapseConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: eraser <file.v> [--top NAME] [--cycles N] [--clock NAME] [--reset NAME]\n\
         \x20             [--mode full|explicit|none] [--max-faults N] [--seed N] [--list-undetected]\n\
         \x20             [--threads N] [--partition contiguous|round-robin|site-affinity|window-affinity]\n\
         \x20             [--eval tree|tape] [--checkpoint-interval N] [--batch] [--collapse]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        top: None,
        cycles: 500,
        clock: None,
        reset: None,
        mode: RedundancyMode::Full,
        max_faults: None,
        seed: 1,
        list_undetected: false,
        parallel: ParallelConfig::from_env(),
        backend: EvalBackend::from_env(),
        checkpoint: CheckpointConfig::from_env(),
        batch: BatchConfig::from_env(),
        collapse: CollapseConfig::from_env(),
    };
    let need = |a: Option<String>| a.unwrap_or_else(|| usage());
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => opts.top = Some(need(args.next())),
            "--cycles" => opts.cycles = need(args.next()).parse().unwrap_or_else(|_| usage()),
            "--clock" => opts.clock = Some(need(args.next())),
            "--reset" => opts.reset = Some(need(args.next())),
            "--mode" => {
                opts.mode = match need(args.next()).as_str() {
                    "full" => RedundancyMode::Full,
                    "explicit" => RedundancyMode::Explicit,
                    "none" => RedundancyMode::None,
                    _ => usage(),
                }
            }
            "--max-faults" => {
                opts.max_faults = Some(need(args.next()).parse().unwrap_or_else(|_| usage()))
            }
            "--seed" => opts.seed = need(args.next()).parse().unwrap_or_else(|_| usage()),
            "--threads" => {
                opts.parallel.threads = need(args.next()).parse().unwrap_or_else(|_| usage())
            }
            "--partition" => {
                opts.parallel.strategy = need(args.next())
                    .parse::<PartitionStrategy>()
                    .unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        usage()
                    })
            }
            "--eval" => {
                opts.backend = need(args.next())
                    .parse::<EvalBackend>()
                    .unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        usage()
                    })
            }
            "--checkpoint-interval" => {
                opts.checkpoint =
                    CheckpointConfig::every(need(args.next()).parse().unwrap_or_else(|_| usage()))
            }
            "--batch" => opts.batch = BatchConfig::enabled(),
            "--collapse" => opts.collapse = CollapseConfig::enabled(),
            "--list-undetected" => opts.list_undetected = true,
            "--help" | "-h" => usage(),
            _ if opts.file.is_empty() && !arg.starts_with('-') => opts.file = arg,
            _ => usage(),
        }
    }
    if opts.file.is_empty() {
        usage();
    }
    opts
}

/// Picks the clock input: the `--clock` flag, else a 1-bit input named like
/// a clock, else the first 1-bit input.
fn find_clock(design: &Design, requested: &Option<String>) -> Option<eraser::ir::SignalId> {
    if let Some(name) = requested {
        return design.find_signal(name);
    }
    let one_bit_inputs: Vec<_> = design
        .inputs()
        .iter()
        .copied()
        .filter(|s| design.signal(*s).width == 1)
        .collect();
    one_bit_inputs
        .iter()
        .copied()
        .find(|s| {
            let n = design.signal(*s).name.to_ascii_lowercase();
            n == "clk" || n == "clock" || n == "pclk" || n.ends_with("_clk")
        })
        .or_else(|| one_bit_inputs.first().copied())
}

fn main() -> ExitCode {
    let opts = parse_args();
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read `{}`: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let design = match compile(&source, opts.top.as_deref()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let Some(clock) = find_clock(&design, &opts.clock) else {
        eprintln!("error: no clock input found (use --clock NAME)");
        return ExitCode::FAILURE;
    };
    let reset = match &opts.reset {
        Some(name) => design.find_signal(name),
        None => design.inputs().iter().copied().find(|s| {
            let n = design.signal(*s).name.to_ascii_lowercase();
            design.signal(*s).width == 1 && (n == "rst" || n == "reset" || n.ends_with("rst_n"))
        }),
    };

    // Fault universe, excluding clock/reset.
    let mut exclude = vec![design.signal(clock).name.clone()];
    if let Some(r) = reset {
        exclude.push(design.signal(r).name.clone());
    }
    let faults = generate_faults(
        &design,
        &FaultListConfig {
            include_inputs: false,
            exclude_names: exclude,
            max_faults: opts.max_faults,
        },
    );

    // Clocked random stimulus over the remaining inputs; reset (active
    // high, or active low if its name ends in `_n`) held for two cycles.
    let mut sb = StimulusBuilder::new();
    let reset_active_low = reset
        .map(|r| design.signal(r).name.ends_with("_n"))
        .unwrap_or(false);
    let data_inputs: Vec<_> = design
        .inputs()
        .iter()
        .copied()
        .filter(|s| Some(*s) != reset && *s != clock)
        .collect();
    let mut state = opts.seed | 1;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 16
    };
    for cycle in 0..opts.cycles {
        let mut changes = Vec::new();
        if let Some(r) = reset {
            let asserted = cycle < 2;
            // Active-high: asserted -> 1; active-low (`*_n`): asserted -> 0.
            changes.push((
                r,
                LogicVec::from_u64(1, (asserted ^ reset_active_low) as u64),
            ));
        }
        for &inp in &data_inputs {
            let w = design.signal(inp).width;
            let mut v = LogicVec::zeros(w);
            for word in 0..w.div_ceil(64) {
                let bits = LogicVec::from_u64(64.min(w - word * 64), rng());
                v.assign_slice(word * 64, &bits);
            }
            changes.push((inp, v));
        }
        sb.add_cycle(clock, &changes);
    }

    println!(
        "{}: {} signals, {} RTL nodes, {} behavioral nodes, {} faults, {} cycles",
        design.name(),
        design.num_signals(),
        design.rtl_nodes().len(),
        design.behavioral_nodes().len(),
        faults.len(),
        opts.cycles
    );
    if opts.parallel.is_parallel() {
        println!("parallel: {}", opts.parallel);
    }
    if opts.checkpoint.is_enabled() {
        println!(
            "checkpointing: {} (window-aware schedule: shard engines resume \
             from shared good-state snapshots)",
            opts.checkpoint
        );
    }
    if opts.batch.enabled {
        println!("batching: 64-wide bit-parallel RTL evaluation");
    }
    if opts.collapse.enabled {
        println!("collapsing: static equivalence folding before simulation");
    }
    let result = run_campaign(
        &design,
        &faults,
        &sb.finish(),
        &CampaignConfig {
            mode: opts.mode,
            drop_detected: true,
            parallel: opts.parallel,
            backend: opts.backend,
            checkpoint: opts.checkpoint,
            batch: opts.batch,
            collapse: opts.collapse,
        },
    );
    println!(
        "mode {} ({} backend): coverage {}",
        opts.mode, opts.backend, result.coverage
    );
    let s = &result.stats;
    println!(
        "behavioral: {} activations, {} faulty executions of {} opportunities",
        s.good_activations, s.fault_executions, s.opportunities
    );
    println!(
        "eliminated: {} explicit ({:.1}%), {} implicit ({:.1}%)",
        s.explicit_skipped,
        s.explicit_percent(),
        s.implicit_skipped,
        s.implicit_percent()
    );
    if opts.batch.enabled {
        let occupancy = if s.batch_groups > 0 {
            100.0 * s.batch_lanes as f64 / (s.batch_groups * 64) as f64
        } else {
            0.0
        };
        println!(
            "batch: {} groups at {:.1}% lane occupancy, {} scalar fallbacks",
            s.batch_groups, occupancy, s.batch_scalar_fallbacks
        );
    }
    if opts.collapse.enabled {
        println!(
            "collapse: {} classes simulated for {} faults ({} folded, {} dropped as undetectable)",
            s.collapse_classes,
            faults.len(),
            s.collapsed_faults,
            s.collapse_dropped
        );
    }
    if opts.list_undetected {
        for id in result.coverage.undetected() {
            let f = faults.fault(id);
            println!(
                "undetected: {} bit {} {}",
                design.signal(f.signal).name,
                f.bit,
                f.stuck
            );
        }
    }
    ExitCode::SUCCESS
}
