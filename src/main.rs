//! `eraser` — command-line RTL fault simulation.
//!
//! Loads a design through the design-source layer — a Verilog-subset file,
//! or a Yosys-JSON netlist when the path ends in `.json` (the output of
//! `yosys -p 'prep; write_json design.json'`) — generates per-bit stuck-at
//! faults, runs an ERASER fault-simulation campaign against a generated
//! clocked random stimulus, and prints coverage plus the redundancy
//! breakdown.
//!
//! ```text
//! eraser <file.v|file.json> [--top NAME] [--stimulus-steps N] [--clock NAME] [--reset NAME]
//!        [--mode full|explicit|none] [--max-faults N] [--seed N] [--list-undetected]
//!        [--threads N] [--partition contiguous|round-robin|site-affinity|window-affinity]
//!        [--eval tree|tape] [--checkpoint-interval N] [--batch] [--collapse]
//! ```
//!
//! `--threads N` runs the campaign fault-parallel over N worker threads
//! (0 = one per hardware thread); `--partition` picks the fault-sharding
//! strategy; `--eval` selects the expression-evaluation backend (the tree
//! walker or compiled instruction tapes); `--batch` evaluates batchable
//! RTL nodes for up to 64 faults at once (bit-parallel fault batching);
//! `--collapse` statically collapses the fault universe (equivalence
//! classes plus provably-undetectable drops) before simulating. Defaults
//! come from `ERASER_THREADS` / `ERASER_PARTITION` / `ERASER_EVAL` /
//! `ERASER_BATCH` / `ERASER_COLLAPSE`. Coverage is bit-identical at any
//! thread count, on either backend, and with batching or collapsing on or
//! off.

use eraser::core::{
    run_campaign, BatchConfig, CampaignConfig, CheckpointConfig, CollapseConfig, EvalBackend,
    ParallelConfig, RedundancyMode,
};
use eraser::designs::DesignSource;
use eraser::fault::{generate_faults, PartitionStrategy};
use std::path::Path;
use std::process::ExitCode;

struct Options {
    file: String,
    top: Option<String>,
    cycles: usize,
    clock: Option<String>,
    reset: Option<String>,
    mode: RedundancyMode,
    max_faults: Option<usize>,
    seed: u64,
    list_undetected: bool,
    parallel: ParallelConfig,
    backend: EvalBackend,
    checkpoint: CheckpointConfig,
    batch: BatchConfig,
    collapse: CollapseConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: eraser <file.v|file.json> [--top NAME] [--stimulus-steps N] [--clock NAME] [--reset NAME]\n\
         \x20             [--mode full|explicit|none] [--max-faults N] [--seed N] [--list-undetected]\n\
         \x20             [--threads N] [--partition contiguous|round-robin|site-affinity|window-affinity]\n\
         \x20             [--eval tree|tape] [--checkpoint-interval N] [--batch] [--collapse]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        top: None,
        cycles: 500,
        clock: None,
        reset: None,
        mode: RedundancyMode::Full,
        max_faults: None,
        seed: 1,
        list_undetected: false,
        parallel: ParallelConfig::from_env(),
        backend: EvalBackend::from_env(),
        checkpoint: CheckpointConfig::from_env(),
        batch: BatchConfig::from_env(),
        collapse: CollapseConfig::from_env(),
    };
    let need = |a: Option<String>| a.unwrap_or_else(|| usage());
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => opts.top = Some(need(args.next())),
            "--cycles" | "--stimulus-steps" => {
                opts.cycles = need(args.next()).parse().unwrap_or_else(|_| usage())
            }
            "--clock" => opts.clock = Some(need(args.next())),
            "--reset" => opts.reset = Some(need(args.next())),
            "--mode" => {
                opts.mode = match need(args.next()).as_str() {
                    "full" => RedundancyMode::Full,
                    "explicit" => RedundancyMode::Explicit,
                    "none" => RedundancyMode::None,
                    _ => usage(),
                }
            }
            "--max-faults" => {
                opts.max_faults = Some(need(args.next()).parse().unwrap_or_else(|_| usage()))
            }
            "--seed" => opts.seed = need(args.next()).parse().unwrap_or_else(|_| usage()),
            "--threads" => {
                opts.parallel.threads = need(args.next()).parse().unwrap_or_else(|_| usage())
            }
            "--partition" => {
                opts.parallel.strategy = need(args.next())
                    .parse::<PartitionStrategy>()
                    .unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        usage()
                    })
            }
            "--eval" => {
                opts.backend = need(args.next())
                    .parse::<EvalBackend>()
                    .unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        usage()
                    })
            }
            "--checkpoint-interval" => {
                opts.checkpoint =
                    CheckpointConfig::every(need(args.next()).parse().unwrap_or_else(|_| usage()))
            }
            "--batch" => opts.batch = BatchConfig::enabled(),
            "--collapse" => opts.collapse = CollapseConfig::enabled(),
            "--list-undetected" => opts.list_undetected = true,
            "--help" | "-h" => usage(),
            _ if opts.file.is_empty() && !arg.starts_with('-') => opts.file = arg,
            _ => usage(),
        }
    }
    if opts.file.is_empty() {
        usage();
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    // The design-source layer handles extension dispatch (`.json` →
    // Yosys netlist import), clock/reset detection, the clock/reset
    // fault exclusions, and the seeded clocked-random stimulus.
    let mut source = match DesignSource::load(
        Path::new(&opts.file),
        opts.top.as_deref(),
        opts.clock.as_deref(),
        opts.reset.as_deref(),
        opts.seed,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    source.set_default_cycles(opts.cycles);
    source.fault_config_mut().max_faults = opts.max_faults;
    let design = source.design();
    let faults = generate_faults(design, source.fault_config());
    let stim = source.stimulus();

    println!(
        "{}: {} signals, {} RTL nodes, {} behavioral nodes, {} faults, {} cycles",
        design.name(),
        design.num_signals(),
        design.rtl_nodes().len(),
        design.behavioral_nodes().len(),
        faults.len(),
        opts.cycles
    );
    if opts.parallel.is_parallel() {
        println!("parallel: {}", opts.parallel);
    }
    if opts.checkpoint.is_enabled() {
        println!(
            "checkpointing: {} (window-aware schedule: shard engines resume \
             from shared good-state snapshots)",
            opts.checkpoint
        );
    }
    if opts.batch.enabled {
        println!("batching: 64-wide bit-parallel RTL evaluation");
    }
    if opts.collapse.enabled {
        println!("collapsing: static equivalence folding before simulation");
    }
    let result = run_campaign(
        design,
        &faults,
        &stim,
        &CampaignConfig {
            mode: opts.mode,
            drop_detected: true,
            parallel: opts.parallel,
            backend: opts.backend,
            checkpoint: opts.checkpoint,
            batch: opts.batch,
            collapse: opts.collapse,
        },
    );
    println!(
        "mode {} ({} backend): coverage {}",
        opts.mode, opts.backend, result.coverage
    );
    let s = &result.stats;
    println!(
        "behavioral: {} activations, {} faulty executions of {} opportunities",
        s.good_activations, s.fault_executions, s.opportunities
    );
    println!(
        "eliminated: {} explicit ({:.1}%), {} implicit ({:.1}%)",
        s.explicit_skipped,
        s.explicit_percent(),
        s.implicit_skipped,
        s.implicit_percent()
    );
    if opts.batch.enabled {
        let occupancy = if s.batch_groups > 0 {
            100.0 * s.batch_lanes as f64 / (s.batch_groups * 64) as f64
        } else {
            0.0
        };
        println!(
            "batch: {} groups at {:.1}% lane occupancy, {} scalar fallbacks",
            s.batch_groups, occupancy, s.batch_scalar_fallbacks
        );
    }
    if opts.collapse.enabled {
        println!(
            "collapse: {} classes simulated for {} faults ({} folded, {} dropped as undetectable)",
            s.collapse_classes,
            faults.len(),
            s.collapsed_faults,
            s.collapse_dropped
        );
    }
    if opts.list_undetected {
        for id in result.coverage.undetected() {
            let f = faults.fault(id);
            println!(
                "undetected: {} bit {} {}",
                design.signal(f.signal).name,
                f.bit,
                f.stuck
            );
        }
    }
    ExitCode::SUCCESS
}
