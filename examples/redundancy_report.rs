//! Inspecting why ERASER is fast: runs the behavioral-heavy SHA-256 core in
//! all three redundancy modes and prints the elimination breakdown, plus
//! the visibility-dependency-graph shape of the design's largest behavioral
//! node — the structure Algorithm 1 walks.
//!
//! Run with `cargo run --release --example redundancy_report`.

use eraser::core::{run_campaign, CampaignConfig, RedundancyMode};
use eraser::designs::Benchmark;
use eraser::fault::generate_faults;

fn main() {
    let bench = Benchmark::Sha256Hv;
    let design = bench.build();
    let faults = generate_faults(&design, &bench.fault_config());
    let stimulus = bench.stimulus(&design);

    // The VDG of the biggest behavioral node.
    let node = design
        .behavioral_nodes()
        .iter()
        .max_by_key(|n| n.vdg.node_count())
        .expect("design has behavioral nodes");
    println!(
        "largest behavioral node `{}`: {} path decision nodes, {} dependency segments,",
        node.name,
        node.vdg.decisions.len(),
        node.vdg.segments.len()
    );
    println!(
        "  reads {} signals, writes {} signals",
        node.reads.len(),
        node.writes.len()
    );
    println!();

    for mode in [
        RedundancyMode::None,
        RedundancyMode::Explicit,
        RedundancyMode::Full,
    ] {
        let t0 = std::time::Instant::now();
        let res = run_campaign(
            &design,
            &faults,
            &stimulus,
            &CampaignConfig {
                mode,
                drop_detected: true,
                ..Default::default()
            },
        );
        let wall = t0.elapsed();
        let s = &res.stats;
        println!(
            "{:<9} {:>7.3}s  coverage {:>6.2}%  executions {:>9}  explicit-skip {:>9}  implicit-skip {:>9}",
            mode.to_string(),
            wall.as_secs_f64(),
            res.coverage.coverage_percent(),
            s.fault_executions,
            s.explicit_skipped,
            s.implicit_skipped,
        );
    }
    println!();
    println!("Eraser-- executes every opportunity; Eraser- removes identical-input executions;");
    println!("Eraser also removes differing-input executions whose taken path is unaffected.");
}
