//! Engine comparison on a CPU workload: enumerates all four fault
//! simulators through the [`FaultSimEngine`](eraser::core::FaultSimEngine)
//! trait, runs them on the PicoRV32-style core via one
//! [`CampaignRunner`](eraser::core::CampaignRunner), checks they detect the
//! identical fault set, and prints the wall-clock comparison — a
//! single-design slice of Fig. 6.
//!
//! Run with `cargo run --release --example cpu_fault_sim`.

use eraser::baselines::all_engines;
use eraser::core::CampaignRunner;
use eraser::designs::Benchmark;
use eraser::fault::generate_faults;

fn main() {
    let bench = Benchmark::PicoRv32;
    let design = bench.build();
    let faults = generate_faults(&design, &bench.fault_config());
    let stimulus = bench.stimulus(&design);
    println!(
        "{}: {} faults, {} stimulus steps",
        bench.name(),
        faults.len(),
        stimulus.num_steps()
    );

    let runner = CampaignRunner::new(&design, &faults, &stimulus);
    let results = runner.run_all(&all_engines());
    if let Err(mismatch) = CampaignRunner::check_parity(&results) {
        panic!("{mismatch}");
    }
    println!("all engines agree: {}", results[0].coverage);
    println!();
    let base = results[0].wall.as_secs_f64();
    for r in &results {
        println!(
            "{:<8} {:>9.3}s  ({:>5.1}x vs IFsim)",
            r.name,
            r.wall.as_secs_f64(),
            base / r.wall.as_secs_f64()
        );
    }
}
