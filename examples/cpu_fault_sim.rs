//! Engine comparison on a CPU workload: runs all four fault simulators on
//! the PicoRV32-style core, checks they detect the identical fault set, and
//! prints the wall-clock comparison — a single-design slice of Fig. 6.
//!
//! Run with `cargo run --release --example cpu_fault_sim`.

use eraser::baselines::{run_cfsim, run_eraser, run_ifsim, run_vfsim};
use eraser::designs::Benchmark;
use eraser::fault::generate_faults;

fn main() {
    let bench = Benchmark::PicoRv32;
    let design = bench.build();
    let faults = generate_faults(&design, &bench.fault_config());
    let stimulus = bench.stimulus(&design);
    println!(
        "{}: {} faults, {} stimulus steps",
        bench.name(),
        faults.len(),
        stimulus.num_steps()
    );

    let ifsim = run_ifsim(&design, &faults, &stimulus);
    let vfsim = run_vfsim(&design, &faults, &stimulus);
    let cfsim = run_cfsim(&design, &faults, &stimulus);
    let eraser = run_eraser(&design, &faults, &stimulus);

    for r in [&vfsim, &cfsim, &eraser] {
        assert!(
            ifsim.coverage.same_detected_set(&r.coverage),
            "{} disagrees with IFsim",
            r.name
        );
    }
    println!("all engines agree: {}", eraser.coverage);
    println!();
    let base = ifsim.wall.as_secs_f64();
    for r in [&ifsim, &vfsim, &cfsim, &eraser] {
        println!(
            "{:<8} {:>9.3}s  ({:>5.1}x vs IFsim)",
            r.name,
            r.wall.as_secs_f64(),
            base / r.wall.as_secs_f64()
        );
    }
}
