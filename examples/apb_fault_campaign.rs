//! Functional-safety style fault campaign on the APB benchmark: run the
//! ERASER engine, report coverage, and list the surviving (undetected)
//! faults by signal — the artifact an ISO 26262 flow would review.
//!
//! Run with `cargo run --release --example apb_fault_campaign`.

use eraser::core::{run_campaign, CampaignConfig, RedundancyMode};
use eraser::designs::Benchmark;
use eraser::fault::generate_faults;

fn main() {
    let bench = Benchmark::Apb;
    let design = bench.build();
    let faults = generate_faults(&design, &bench.fault_config());
    let stimulus = bench.stimulus(&design);
    println!(
        "APB campaign: {} faults, {} stimulus steps",
        faults.len(),
        stimulus.num_steps()
    );

    let result = run_campaign(
        &design,
        &faults,
        &stimulus,
        &CampaignConfig {
            mode: RedundancyMode::Full,
            drop_detected: true,
            ..Default::default()
        },
    );
    println!("coverage: {}", result.coverage);

    // Survivors grouped by signal — the review list.
    let undetected = result.coverage.undetected();
    println!("{} undetected faults:", undetected.len());
    let mut by_signal: std::collections::BTreeMap<&str, usize> = Default::default();
    for id in &undetected {
        let f = faults.fault(*id);
        *by_signal
            .entry(design.signal(f.signal).name.as_str())
            .or_default() += 1;
    }
    for (signal, count) in by_signal {
        println!("  {signal:<12} {count} surviving stuck-at faults");
    }
    println!();
    println!(
        "work profile: {} good activations, {} faulty executions (of {} opportunities)",
        result.stats.good_activations, result.stats.fault_executions, result.stats.opportunities
    );
}
