//! Quickstart: compile a small Verilog design, generate stuck-at faults,
//! run an ERASER fault-simulation campaign and print the coverage.
//!
//! Run with `cargo run --release --example quickstart`. Set
//! `ERASER_THREADS=4` (and optionally `ERASER_PARTITION`) to run the
//! campaign fault-parallel — coverage is bit-identical at any thread
//! count.

use eraser::core::{run_campaign, CampaignConfig, RedundancyMode};
use eraser::fault::{generate_faults, FaultListConfig};
use eraser::frontend::compile;
use eraser::logic::LogicVec;
use eraser::sim::StimulusBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny pipelined accumulator with a decode FSM.
    let design = compile(
        r#"
        module dut(
            input wire clk,
            input wire rst,
            input wire [1:0] cmd,
            input wire [7:0] data,
            output reg [15:0] acc,
            output reg busy
        );
            always @(posedge clk) begin
                if (rst) begin
                    acc <= 16'h0;
                    busy <= 1'b0;
                end
                else begin
                    busy <= cmd != 2'd0;
                    case (cmd)
                        2'd1: acc <= acc + {8'h0, data};
                        2'd2: acc <= acc ^ {data, 8'h0};
                        2'd3: acc <= {acc[14:0], acc[15]};
                        default: ;
                    endcase
                end
            end
        endmodule
        "#,
        Some("dut"),
    )?;

    // Fault universe: per-bit stuck-at faults on every named wire/reg,
    // excluding clock and reset.
    let faults = generate_faults(
        &design,
        &FaultListConfig {
            exclude_names: vec!["clk".into(), "rst".into()],
            ..Default::default()
        },
    );
    println!("design `{}`: {} faults", design.name(), faults.len());

    // Deterministic stimulus: reset, then a mix of commands.
    let clk = design.find_signal("clk").expect("clk");
    let rst = design.find_signal("rst").expect("rst");
    let cmd = design.find_signal("cmd").expect("cmd");
    let data = design.find_signal("data").expect("data");
    let mut sb = StimulusBuilder::new();
    sb.add_cycle(clk, &[(rst, LogicVec::from_u64(1, 1))]);
    for i in 0..100u64 {
        sb.add_cycle(
            clk,
            &[
                (rst, LogicVec::from_u64(1, 0)),
                (cmd, LogicVec::from_u64(2, 1 + i % 3)),
                (data, LogicVec::from_u64(8, i.wrapping_mul(37) % 256)),
            ],
        );
    }

    // Run the full ERASER engine (explicit + implicit redundancy
    // elimination, fault dropping on detection). The default config honors
    // ERASER_THREADS / ERASER_PARTITION for fault-parallel execution.
    let config = CampaignConfig {
        mode: RedundancyMode::Full,
        drop_detected: true,
        ..Default::default()
    };
    if config.parallel.is_parallel() {
        println!("running fault-parallel: {}", config.parallel);
    }
    let result = run_campaign(&design, &faults, &sb.finish(), &config);
    println!("coverage: {}", result.coverage);
    println!(
        "behavioral executions: {} of {} opportunities ({} explicit-skipped, {} implicit-skipped)",
        result.stats.fault_executions,
        result.stats.opportunities,
        result.stats.explicit_skipped,
        result.stats.implicit_skipped,
    );
    Ok(())
}
