//! Behavioral contract of the [`FaultSimEngine`] abstraction itself:
//! engines are interchangeable trait objects, the [`CampaignRunner`] times
//! them uniformly, and — the Table II criterion — every engine reports
//! bit-identical fault coverage on real benchmark designs.

use eraser::baselines::{all_engines, CfSim};
use eraser::core::{CampaignConfig, CampaignRunner, Eraser, RedundancyMode};
use eraser::designs::Benchmark;
use eraser::fault::{generate_faults, FaultListConfig};

fn setup(
    bench: Benchmark,
    cycles: usize,
    max_faults: usize,
) -> (
    eraser::ir::Design,
    eraser::fault::FaultList,
    eraser::sim::Stimulus,
) {
    let design = bench.build();
    let mut cfg: FaultListConfig = bench.fault_config();
    cfg.max_faults = Some(max_faults.min(cfg.max_faults.unwrap_or(usize::MAX)));
    let faults = generate_faults(&design, &cfg);
    let stim = bench.stimulus_with_cycles(&design, cycles);
    (design, faults, stim)
}

/// All engines, enumerated as trait objects, report bit-identical coverage
/// on three benchmark designs of different character (datapath, protocol
/// FSM, CPU) — and each fault's detected/undetected verdict matches
/// per-fault across every engine pair, not just in aggregate.
#[test]
fn engines_report_bit_identical_coverage_on_three_benchmarks() {
    for (bench, cycles, max_faults) in [
        (Benchmark::Alu64, 30, 48),
        (Benchmark::Apb, 48, 48),
        (Benchmark::RiscvMini, 40, 48),
    ] {
        let (design, faults, stim) = setup(bench, cycles, max_faults);
        let runner = CampaignRunner::new(&design, &faults, &stim);
        let results = runner.run_all(&all_engines());
        assert_eq!(results.len(), 4, "{}", bench.name());
        for pair in results.windows(2) {
            assert!(
                pair[0].coverage.same_detected_set(&pair[1].coverage),
                "{}: {} ({}) vs {} ({})",
                bench.name(),
                pair[0].name,
                pair[0].coverage,
                pair[1].name,
                pair[1].coverage
            );
            // Bit-identical per fault, not just equal counts.
            for f in faults.iter() {
                assert_eq!(
                    pair[0].coverage.is_detected(f.id),
                    pair[1].coverage.is_detected(f.id),
                    "{}: fault {} verdict differs between {} and {}",
                    bench.name(),
                    f.id,
                    pair[0].name,
                    pair[1].name
                );
            }
        }
        assert!(
            results[0].coverage.detected() > 0,
            "{}: campaign detected nothing",
            bench.name()
        );
    }
}

/// Engine names are stable and every runner-produced result carries a
/// measured wall time.
#[test]
fn runner_captures_names_and_timing() {
    let (design, faults, stim) = setup(Benchmark::Apb, 30, 24);
    let runner = CampaignRunner::new(&design, &faults, &stim);
    let results = runner.run_all(&all_engines());
    let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, ["IFsim", "VFsim", "CfSim", "Eraser"]);
    for r in &results {
        assert!(r.wall.as_nanos() > 0, "{} has no wall time", r.name);
        assert_eq!(r.coverage.total(), faults.len());
    }
}

/// The `Eraser` trait impl pins its own ablation mode, overriding the
/// shared campaign config — so a heterogeneous engine list runs correctly
/// under one config — while CfSim is exactly the explicit-mode engine
/// under a different name.
#[test]
fn eraser_mode_overrides_shared_config() {
    let (design, faults, stim) = setup(Benchmark::PicoRv32, 40, 40);
    let config = CampaignConfig {
        mode: RedundancyMode::None, // would disable all elimination
        drop_detected: true,
        ..Default::default()
    };
    let runner = CampaignRunner::new(&design, &faults, &stim).with_config(config);

    let full = runner.run(&Eraser::full());
    let stats = full.stats.as_ref().expect("concurrent engine has stats");
    assert!(
        stats.eliminated() > 0,
        "full mode must eliminate redundancy despite config.mode = None"
    );

    let cfsim = runner.run(&CfSim);
    let explicit = runner.run(&Eraser::explicit());
    assert_eq!(cfsim.name, "CfSim");
    assert_eq!(explicit.name, "Eraser-");
    assert!(cfsim.coverage.same_detected_set(&explicit.coverage));
    let (cf, ex) = (cfsim.stats.unwrap(), explicit.stats.unwrap());
    assert_eq!(cf.fault_executions, ex.fault_executions);
    assert_eq!(cf.explicit_skipped, ex.explicit_skipped);
    assert_eq!(cf.implicit_skipped, 0);
}

/// The three ablation variants agree on coverage and are monotone in
/// executed work (Eraser-- >= Eraser- >= Eraser), driven purely through
/// the trait.
#[test]
fn ablation_line_up_is_monotone() {
    let (design, faults, stim) = setup(Benchmark::Sha256Hv, 72, 32);
    let runner = CampaignRunner::new(&design, &faults, &stim);
    let results = runner.run_all(&Eraser::ablation());
    let names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, ["Eraser--", "Eraser-", "Eraser"]);
    CampaignRunner::check_parity(&results).expect("ablation parity");
    let execs: Vec<u64> = results
        .iter()
        .map(|r| r.stats.as_ref().unwrap().fault_executions)
        .collect();
    assert!(
        execs[0] >= execs[1] && execs[1] >= execs[2],
        "executions not monotone: {execs:?}"
    );
}

/// `check_parity` reports the offending engine pair instead of silently
/// passing when coverage disagrees.
#[test]
fn check_parity_names_the_disagreeing_engine() {
    let (design, faults, stim) = setup(Benchmark::Alu64, 20, 16);
    let runner = CampaignRunner::new(&design, &faults, &stim);
    let mut results = runner.run_all(&Eraser::ablation());
    // Forge a disagreement: replace one result's coverage with an empty
    // report of the same size.
    results[2].coverage = eraser::fault::CoverageReport::new(faults.len());
    let err = CampaignRunner::check_parity(&results).unwrap_err();
    assert_eq!(err.baseline.0, "Eraser--");
    assert_eq!(err.other.0, "Eraser");
    assert!(err.to_string().contains("parity"));
}
