//! Collapse-vs-full parity — the correctness criterion of static fault
//! collapsing: on every benchmark design, with every engine, on both
//! evaluation backends, at any thread count and checkpoint interval, with
//! and without bit-parallel batching, a campaign with `--collapse` must
//! produce **bit-identical** coverage (every fault's first-detection step
//! and observing output) over the *full* fault universe. The semantic
//! redundancy counters are *expected* to differ — the collapsed run
//! schedules fewer faults, which is the whole point — so parity here is
//! per-fault detection records plus the collapse accounting identity
//! `classes + collapsed + dropped == total`.
//!
//! The default tests run shortened campaigns on the same representative
//! subset as `backend_parity`; the `--ignored` sweep covers all ten
//! benchmarks. A hand-built fixture asserts each collapse rule actually
//! fires (alias fold, inverter fold, truncated-bit drop, constant-dormant
//! drop, unobservable drop).

use eraser::baselines::{IFsim, VFsim};
use eraser::core::{
    run_campaign, BatchConfig, CampaignConfig, CheckpointConfig, CollapseConfig, EvalBackend,
    FaultSimEngine, ParallelConfig, RedundancyMode,
};
use eraser::designs::Benchmark;
use eraser::fault::{
    generate_faults, CollapsedFaultList, FaultId, FaultList, FaultListConfig, StuckAt,
};

/// Runs collapsed-vs-full campaigns under `config` and asserts
/// bit-identical per-fault coverage over the full universe, plus the
/// collapse accounting identity on the collapsed run's stats.
fn compare(
    label: &str,
    design: &eraser::ir::Design,
    faults: &FaultList,
    stim: &eraser::sim::Stimulus,
    config: &CampaignConfig,
) {
    let run = |collapse| {
        run_campaign(
            design,
            faults,
            stim,
            &CampaignConfig {
                collapse,
                ..config.clone()
            },
        )
    };
    let full = run(CollapseConfig::disabled());
    let collapsed = run(CollapseConfig::enabled());
    assert_eq!(
        full.stats.collapse_classes, 0,
        "{label}: uncollapsed run recorded collapse classes"
    );
    assert_eq!(full.stats.collapsed_faults, 0);
    assert_eq!(full.stats.collapse_dropped, 0);
    assert_eq!(
        collapsed.stats.collapse_classes
            + collapsed.stats.collapsed_faults
            + collapsed.stats.collapse_dropped,
        faults.len() as u64,
        "{label}: collapse accounting does not partition the universe"
    );
    for f in faults.iter() {
        assert_eq!(
            full.coverage.detection(f.id),
            collapsed.coverage.detection(f.id),
            "{label}: detection record of fault {} diverged",
            f.id
        );
    }
}

/// The full configuration matrix on one benchmark: redundancy modes ×
/// backends serially, then Full mode × backends × threads {1, 4} ×
/// checkpoint {off, every 8} × batch {off, on}.
fn collapse_parity_for(bench: Benchmark, cycles: usize, max_faults: usize) {
    let design = bench.build();
    let mut cfg: FaultListConfig = bench.fault_config();
    cfg.max_faults = Some(max_faults.min(cfg.max_faults.unwrap_or(usize::MAX)));
    let faults: FaultList = generate_faults(&design, &cfg);
    let stim = bench.stimulus_with_cycles(&design, cycles);

    for mode in [
        RedundancyMode::None,
        RedundancyMode::Explicit,
        RedundancyMode::Full,
    ] {
        for backend in [EvalBackend::Tree, EvalBackend::Tape] {
            compare(
                &format!("{} ({mode}, {backend})", bench.name()),
                &design,
                &faults,
                &stim,
                &CampaignConfig {
                    mode,
                    backend,
                    ..CampaignConfig::serial()
                },
            );
        }
    }
    for backend in [EvalBackend::Tree, EvalBackend::Tape] {
        for threads in [1usize, 4] {
            for checkpoint in [CheckpointConfig::disabled(), CheckpointConfig::every(8)] {
                for batch in [BatchConfig::disabled(), BatchConfig::enabled()] {
                    compare(
                        &format!(
                            "{} (Full, {backend}, {threads} threads, ckpt {:?}, batch {:?})",
                            bench.name(),
                            checkpoint,
                            batch
                        ),
                        &design,
                        &faults,
                        &stim,
                        &CampaignConfig {
                            mode: RedundancyMode::Full,
                            backend,
                            parallel: ParallelConfig {
                                threads,
                                ..ParallelConfig::serial()
                            },
                            checkpoint,
                            batch,
                            ..CampaignConfig::serial()
                        },
                    );
                }
            }
        }
    }
}

#[test]
fn collapse_parity_apb() {
    collapse_parity_for(Benchmark::Apb, 60, 80);
}

#[test]
fn collapse_parity_alu() {
    collapse_parity_for(Benchmark::Alu64, 40, 80);
}

#[test]
fn collapse_parity_conv() {
    collapse_parity_for(Benchmark::ConvAcc, 40, 60);
}

/// The wide-signal path: >64-bit sites must collapse (or not) exactly like
/// narrow ones, with coverage lifted bit-identically.
#[test]
fn collapse_parity_sha256_wide() {
    let bench = Benchmark::Sha256Hv;
    let design = bench.build();
    let mut cfg = bench.fault_config();
    cfg.max_faults = Some(60);
    let faults = generate_faults(&design, &cfg);
    let stim = bench.stimulus_with_cycles(&design, 72);
    for backend in [EvalBackend::Tree, EvalBackend::Tape] {
        compare(
            &format!("sha256_hv ({backend})"),
            &design,
            &faults,
            &stim,
            &CampaignConfig {
                mode: RedundancyMode::Full,
                backend,
                ..CampaignConfig::serial()
            },
        );
    }
}

/// The serial force-based baselines collapse through the same
/// [`run_collapsed`](eraser::core::run_collapsed) wrapper as the
/// concurrent campaign: their lifted coverage must match their own
/// uncollapsed run fault for fault.
#[test]
fn collapse_parity_baselines() {
    let bench = Benchmark::Apb;
    let design = bench.build();
    let mut cfg = bench.fault_config();
    cfg.max_faults = Some(60);
    let faults = generate_faults(&design, &cfg);
    let stim = bench.stimulus_with_cycles(&design, 50);
    let engines: [Box<dyn FaultSimEngine>; 2] = [Box::new(IFsim), Box::new(VFsim)];
    for engine in &engines {
        for backend in [EvalBackend::Tree, EvalBackend::Tape] {
            let run = |collapse| {
                engine.run(
                    &design,
                    &faults,
                    &stim,
                    &CampaignConfig {
                        backend,
                        collapse,
                        ..CampaignConfig::serial()
                    },
                )
            };
            let full = run(CollapseConfig::disabled());
            let collapsed = run(CollapseConfig::enabled());
            for f in faults.iter() {
                assert_eq!(
                    full.coverage.detection(f.id),
                    collapsed.coverage.detection(f.id),
                    "{} ({backend}): detection record of fault {} diverged",
                    engine.name(),
                    f.id
                );
            }
            assert!(
                full.coverage.detected() > 0,
                "{} ({backend}): nothing detected",
                engine.name()
            );
        }
    }
}

/// Full-suite collapse parity across all ten benchmarks. Slow in debug
/// builds; run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "slow: full benchmark sweep; run with --release -- --ignored"]
fn collapse_parity_full_suite() {
    for bench in Benchmark::all() {
        let design = bench.build();
        let mut cfg = bench.fault_config();
        cfg.max_faults = Some(250);
        let faults = generate_faults(&design, &cfg);
        let stim = bench.stimulus_with_cycles(&design, bench.default_cycles() / 2);
        for mode in [
            RedundancyMode::None,
            RedundancyMode::Explicit,
            RedundancyMode::Full,
        ] {
            for backend in [EvalBackend::Tree, EvalBackend::Tape] {
                compare(
                    &format!("{} ({mode}, {backend})", bench.name()),
                    &design,
                    &faults,
                    &stim,
                    &CampaignConfig {
                        mode,
                        backend,
                        ..CampaignConfig::serial()
                    },
                );
            }
        }
    }
}

/// Hand-built fixture where every collapse rule fires at least once:
///
/// * `assign u = t` with `t` read only by that alias — alias fold between
///   `t` and `u` bits (and the chain continues through `inv`).
/// * `assign inv = ~u` with `u` read only by the inverter — inverter fold
///   with flipped polarity.
/// * an 8-bit wire feeding a 4-bit submodule port — the port-connection
///   buffer truncates, so `wide`'s high bits drop.
/// * `assign k = 8'h5A` — constant-dormant drops where the stuck polarity
///   matches the constant bit.
/// * `dead` is driven but read by nothing — unobservable drop.
/// * `half` is read only through `half[0]` — unread-bit drops on the
///   remaining bits.
#[test]
fn fixture_every_rule_fires() {
    let design = eraser::frontend::compile(
        "module sub(input wire [3:0] n, output wire [3:0] p);
           assign p = ~n;
         endmodule
         module m(input wire clk, input wire [3:0] in, output reg [7:0] q);
           wire [3:0] t;
           wire [3:0] u;
           wire [3:0] inv;
           wire [7:0] wide;
           wire [3:0] narrow;
           wire [7:0] k;
           wire [3:0] dead;
           wire [3:0] half;
           assign t = in + 4'h1;
           assign u = t;
           assign inv = ~u;
           assign wide = {4'b1010, in};
           sub s (.n(wide), .p(narrow));
           assign k = 8'h5A;
           assign dead = in ^ 4'hF;
           assign half = in ^ 4'h3;
           always @(posedge clk) q <= {inv, narrow} + k + {7'b0, half[0]};
         endmodule",
        None,
    )
    .unwrap();
    let faults = generate_faults(
        &design,
        &FaultListConfig {
            include_inputs: true,
            max_faults: None,
            ..Default::default()
        },
    );
    let plan = CollapsedFaultList::build(&design, &faults);

    let sig = |name: &str| design.find_signal(name).unwrap();
    let fault_at = |name: &str, bit: u32, stuck: StuckAt| -> FaultId {
        let s = sig(name);
        faults
            .iter()
            .find(|f| f.signal == s && f.bit == bit && f.stuck == stuck)
            .unwrap_or_else(|| panic!("no fault at {name}[{bit}] stuck-at-{stuck:?}"))
            .id
    };

    // Alias fold: t[0]/0 and u[0]/0 share a class.
    let a = plan.representative_of(fault_at("t", 0, StuckAt::Zero));
    let b = plan.representative_of(fault_at("u", 0, StuckAt::Zero));
    assert!(a.is_some(), "alias-folded fault was dropped");
    assert_eq!(a, b, "alias fold did not fire on t[0]/u[0]");

    // Inverter fold: u[1]/0 and inv[1]/1 share a class (flipped polarity),
    // and the alias chain closes transitively: t[1]/0 joins the same class.
    let a = plan.representative_of(fault_at("u", 1, StuckAt::Zero));
    let b = plan.representative_of(fault_at("inv", 1, StuckAt::One));
    assert!(a.is_some(), "inverter-folded fault was dropped");
    assert_eq!(a, b, "inverter fold did not fire on u[1]/inv[1]");
    assert_eq!(
        plan.representative_of(fault_at("t", 1, StuckAt::Zero)),
        b,
        "alias and inverter folds did not close transitively"
    );

    // Truncated-bit drop: wide[7..4] feed only the narrowing alias.
    for bit in 4..8 {
        for stuck in [StuckAt::Zero, StuckAt::One] {
            let f = fault_at("wide", bit, stuck);
            assert_eq!(
                plan.representative_of(f),
                None,
                "wide[{bit}] stuck-at-{stuck:?} survived the truncated-bit drop"
            );
            assert!(plan.dropped().contains(&f));
        }
    }

    // Constant-dormant drop: k = 8'h5A = 0101_1010, so k[1]/1 (bit is 1)
    // and k[0]/0 (bit is 0) are no-ops; the opposite polarities survive.
    let dormant = fault_at("k", 1, StuckAt::One);
    assert_eq!(plan.representative_of(dormant), None);
    assert!(plan.dropped().contains(&dormant));
    let dormant = fault_at("k", 0, StuckAt::Zero);
    assert_eq!(plan.representative_of(dormant), None);
    let active = fault_at("k", 1, StuckAt::Zero);
    assert!(plan.representative_of(active).is_some());

    // Unobservable drop: dead reaches no output.
    let f = fault_at("dead", 0, StuckAt::One);
    assert_eq!(plan.representative_of(f), None);
    assert!(plan.dropped().contains(&f));

    // Unread-bit drop: only half[0] is ever read; the other bits drop.
    assert!(plan
        .representative_of(fault_at("half", 0, StuckAt::One))
        .is_some());
    for bit in 1..4 {
        let f = fault_at("half", bit, StuckAt::Zero);
        assert_eq!(
            plan.representative_of(f),
            None,
            "half[{bit}] survived the unread-bit drop"
        );
        assert!(plan.dropped().contains(&f));
    }

    // Accounting identity over the fixture.
    assert_eq!(
        plan.num_classes() + plan.collapsed_faults() + plan.dropped().len(),
        plan.total()
    );
    assert!(plan.collapsed_faults() > 0 && !plan.dropped().is_empty());

    // And the fixture still passes end-to-end parity on both backends.
    let clk = sig("clk");
    let input = sig("in");
    let mut sb = eraser::sim::StimulusBuilder::new();
    let mut x = 7u64;
    for _ in 0..40 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        sb.add_cycle(
            clk,
            &[(input, eraser::logic::LogicVec::from_u64(4, x >> 30))],
        );
    }
    let stim = sb.finish();
    for backend in [EvalBackend::Tree, EvalBackend::Tape] {
        compare(
            &format!("fixture ({backend})"),
            &design,
            &faults,
            &stim,
            &CampaignConfig {
                mode: RedundancyMode::Full,
                backend,
                ..CampaignConfig::serial()
            },
        );
    }
}
