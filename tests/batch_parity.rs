//! Batch-vs-scalar parity — the correctness criterion of bit-parallel
//! fault batching: on every benchmark design, in every redundancy mode, on
//! both evaluation backends, at any thread count and checkpoint interval, a
//! campaign with `--batch` must produce **bit-identical** coverage (every
//! fault's first-detection step and observing output) and identical
//! semantic redundancy counters to the scalar run. The batch occupancy
//! counters (`batch_groups`, `batch_lanes`, `batch_scalar_fallbacks`) are
//! the only fields allowed to differ — they describe *how* the same work
//! was evaluated, not what it computed.
//!
//! The default tests run shortened campaigns on the same representative
//! subset as `backend_parity`; the `--ignored` sweep covers all ten
//! benchmarks.

use eraser::baselines::{IFsim, VFsim};
use eraser::core::{
    run_campaign, BatchConfig, CampaignConfig, CampaignRunner, CheckpointConfig, Eraser,
    EvalBackend, FaultSimEngine, ParallelConfig, RedundancyMode, RedundancyStats,
};
use eraser::designs::Benchmark;
use eraser::fault::{generate_faults, FaultList, FaultListConfig};

/// Asserts every semantic counter matches (timing fields and the batch
/// occupancy counters excluded — the latter are *expected* to differ, they
/// record which evaluation strategy ran).
fn assert_semantics_identical(label: &str, a: &RedundancyStats, b: &RedundancyStats) {
    let key = |s: &RedundancyStats| {
        [
            s.good_activations,
            s.opportunities,
            s.explicit_skipped,
            s.implicit_skipped,
            s.fault_executions,
            s.fault_only_activations,
            s.suppressed_activations,
            s.rtl_good_evals,
            s.rtl_fault_evals,
            s.deltas,
            s.skipped_prefix_steps,
            s.skipped_faults,
            s.dropped_faults,
        ]
    };
    assert_eq!(
        key(a),
        key(b),
        "{label}: semantic counters diverged between scalar and batch"
    );
}

/// Runs scalar-vs-batch campaigns under `config` and asserts bit-identical
/// results; returns the batched run's stats for engagement checks.
fn compare(
    label: &str,
    design: &eraser::ir::Design,
    faults: &FaultList,
    stim: &eraser::sim::Stimulus,
    config: &CampaignConfig,
) -> RedundancyStats {
    let run = |batch| {
        run_campaign(
            design,
            faults,
            stim,
            &CampaignConfig {
                batch,
                ..config.clone()
            },
        )
    };
    let scalar = run(BatchConfig::disabled());
    let batched = run(BatchConfig::enabled());
    assert_eq!(scalar.stats.batch_groups, 0, "{label}: scalar run batched");
    assert_eq!(scalar.stats.batch_scalar_fallbacks, 0);
    for f in faults.iter() {
        assert_eq!(
            scalar.coverage.detection(f.id),
            batched.coverage.detection(f.id),
            "{label}: detection record of fault {} diverged",
            f.id
        );
    }
    assert_semantics_identical(label, &scalar.stats, &batched.stats);
    batched.stats
}

/// The full configuration matrix on one benchmark: redundancy modes ×
/// backends serially, then Full mode × backends × threads {1, 4} ×
/// checkpoint {off, every 8}.
fn batch_parity_for(bench: Benchmark, cycles: usize, max_faults: usize) {
    let design = bench.build();
    let mut cfg: FaultListConfig = bench.fault_config();
    cfg.max_faults = Some(max_faults.min(cfg.max_faults.unwrap_or(usize::MAX)));
    let faults: FaultList = generate_faults(&design, &cfg);
    let stim = bench.stimulus_with_cycles(&design, cycles);

    for mode in [
        RedundancyMode::None,
        RedundancyMode::Explicit,
        RedundancyMode::Full,
    ] {
        for backend in [EvalBackend::Tree, EvalBackend::Tape] {
            compare(
                &format!("{} ({mode}, {backend})", bench.name()),
                &design,
                &faults,
                &stim,
                &CampaignConfig {
                    mode,
                    backend,
                    ..CampaignConfig::serial()
                },
            );
        }
    }
    for backend in [EvalBackend::Tree, EvalBackend::Tape] {
        for threads in [1usize, 4] {
            for checkpoint in [CheckpointConfig::disabled(), CheckpointConfig::every(8)] {
                compare(
                    &format!(
                        "{} (Full, {backend}, {threads} threads, ckpt {:?})",
                        bench.name(),
                        checkpoint
                    ),
                    &design,
                    &faults,
                    &stim,
                    &CampaignConfig {
                        mode: RedundancyMode::Full,
                        backend,
                        parallel: ParallelConfig {
                            threads,
                            ..ParallelConfig::serial()
                        },
                        checkpoint,
                        ..CampaignConfig::serial()
                    },
                );
            }
        }
    }
}

#[test]
fn batch_parity_apb() {
    batch_parity_for(Benchmark::Apb, 60, 80);
}

#[test]
fn batch_parity_alu() {
    batch_parity_for(Benchmark::Alu64, 40, 80);
}

#[test]
fn batch_parity_conv() {
    batch_parity_for(Benchmark::ConvAcc, 40, 60);
}

/// SHA-256 carries >64-bit signals: batch compilation must reject the wide
/// nodes (falling back to scalar evaluation) while still producing
/// bit-identical results on the rest.
#[test]
fn batch_parity_sha256_wide_fallback() {
    let bench = Benchmark::Sha256Hv;
    let design = bench.build();
    let mut cfg = bench.fault_config();
    cfg.max_faults = Some(60);
    let faults = generate_faults(&design, &cfg);
    let stim = bench.stimulus_with_cycles(&design, 72);
    for backend in [EvalBackend::Tree, EvalBackend::Tape] {
        compare(
            &format!("sha256_hv ({backend})"),
            &design,
            &faults,
            &stim,
            &CampaignConfig {
                mode: RedundancyMode::Full,
                backend,
                ..CampaignConfig::serial()
            },
        );
    }
}

/// Full-suite batch parity across all ten benchmarks. Slow in debug
/// builds; run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "slow: full benchmark sweep; run with --release -- --ignored"]
fn batch_parity_full_suite() {
    for bench in Benchmark::all() {
        let design = bench.build();
        let mut cfg = bench.fault_config();
        cfg.max_faults = Some(250);
        let faults = generate_faults(&design, &cfg);
        let stim = bench.stimulus_with_cycles(&design, bench.default_cycles() / 2);
        for mode in [
            RedundancyMode::None,
            RedundancyMode::Explicit,
            RedundancyMode::Full,
        ] {
            for backend in [EvalBackend::Tree, EvalBackend::Tape] {
                compare(
                    &format!("{} ({mode}, {backend})", bench.name()),
                    &design,
                    &faults,
                    &stim,
                    &CampaignConfig {
                        mode,
                        backend,
                        ..CampaignConfig::serial()
                    },
                );
            }
        }
    }
}

/// Lane-packing fixture: several faults on the *same* site (sharing batch
/// lanes by construction) mixed with faults on other sites, driving a
/// design made of batchable RTL nodes. The batch path must engage (filled
/// lanes, formed groups) and agree with the scalar run bit for bit.
#[test]
fn lane_packing_mixed_sites_engages_batching() {
    let design = eraser::frontend::compile(
        "module m(input wire clk, input wire [7:0] a, input wire [7:0] b,
                  output reg [7:0] q, output wire [7:0] y, output wire z);
           wire [7:0] s;
           wire [7:0] m1;
           assign s = a + b;
           assign m1 = s ^ {b[3:0], a[7:4]};
           assign y = (a < b) ? m1 : s;
           assign z = ^s;
           always @(posedge clk) q <= y;
         endmodule",
        None,
    )
    .unwrap();
    let faults = generate_faults(
        &design,
        &FaultListConfig {
            include_inputs: false,
            ..Default::default()
        },
    );
    assert!(
        faults.len() > 16,
        "fixture needs enough faults to fill lanes, got {}",
        faults.len()
    );
    let clk = design.find_signal("clk").unwrap();
    let a = design.find_signal("a").unwrap();
    let b = design.find_signal("b").unwrap();
    let mut sb = eraser::sim::StimulusBuilder::new();
    let mut x = 11u64;
    for _ in 0..30 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        sb.add_cycle(
            clk,
            &[
                (a, eraser::logic::LogicVec::from_u64(8, x >> 20)),
                (b, eraser::logic::LogicVec::from_u64(8, x >> 40)),
            ],
        );
    }
    let stim = sb.finish();
    for backend in [EvalBackend::Tree, EvalBackend::Tape] {
        let stats = compare(
            &format!("lane_packing ({backend})"),
            &design,
            &faults,
            &stim,
            &CampaignConfig {
                mode: RedundancyMode::Full,
                backend,
                drop_detected: false,
                // Occupancy is measured on the single-engine path: the
                // checkpointed window schedule legitimately splits faults
                // across per-group engines, thinning lane packing without
                // changing semantics (covered by the parity tests above).
                checkpoint: CheckpointConfig::disabled(),
                ..CampaignConfig::serial()
            },
        );
        assert!(
            stats.batch_groups >= 1,
            "{backend}: batching never engaged ({stats:?})"
        );
        assert!(
            stats.batch_lanes > stats.batch_groups,
            "{backend}: no batch ever filled more than one lane"
        );
    }
}

/// The batched concurrent engine against the serial force-based baselines
/// (which never batch): the strongest differential oracle — two completely
/// independent evaluation strategies must agree on every detection record.
#[test]
fn batched_eraser_agrees_with_serial_baselines() {
    let bench = Benchmark::Apb;
    let design = bench.build();
    let mut cfg = bench.fault_config();
    cfg.max_faults = Some(60);
    let faults = generate_faults(&design, &cfg);
    let stim = bench.stimulus_with_cycles(&design, 50);
    let engines: Vec<Box<dyn FaultSimEngine>> = vec![
        Box::new(IFsim),
        Box::new(VFsim),
        Box::new(Eraser::full()),
        Box::new(Eraser::explicit()),
        Box::new(Eraser::none()),
    ];
    for backend in [EvalBackend::Tree, EvalBackend::Tape] {
        let runner = CampaignRunner::new(&design, &faults, &stim).with_config(CampaignConfig {
            backend,
            batch: BatchConfig::enabled(),
            ..CampaignConfig::serial()
        });
        let results = runner.run_all(&engines);
        if let Err(mismatch) = CampaignRunner::check_parity(&results) {
            panic!("{backend}: {mismatch}");
        }
        assert!(
            results[0].coverage.detected() > 0,
            "{backend}: nothing detected"
        );
    }
}
