//! Fault-parallel determinism: for every engine, every partition strategy
//! and thread counts {1, 2, 4, 7}, the merged [`CoverageReport`] of a
//! sharded campaign must be **bit-identical** to the serial run — the same
//! detected set, the same first-detection steps, the same observing
//! outputs, and therefore the same coverage metric. This is the structural
//! guarantee that makes parallelism a pure wall-clock axis: partitioning
//! never changes results.
//!
//! The default tests sweep a representative subset; the `--ignored` test
//! extends the parity sweep across all ten benchmark designs and the full
//! engine line-up (run with `cargo test --release -- --ignored`, as CI
//! does).

use eraser::baselines::{CfSim, IFsim, VFsim};
use eraser::core::{
    CampaignConfig, CampaignRunner, Eraser, FaultSimEngine, Parallel, ParallelConfig,
};
use eraser::designs::Benchmark;
use eraser::fault::{generate_faults, FaultListConfig, PartitionStrategy};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 7];

/// Runs `engine` serially and through the [`Parallel`] adapter for every
/// strategy/thread-count combination, requiring full bit-identity.
fn assert_deterministic<E: FaultSimEngine + Sync + Copy>(
    bench: Benchmark,
    cycles: usize,
    max_faults: usize,
    engine: E,
) {
    let design = bench.build();
    let mut cfg: FaultListConfig = bench.fault_config();
    cfg.max_faults = Some(max_faults.min(cfg.max_faults.unwrap_or(usize::MAX)));
    let faults = generate_faults(&design, &cfg);
    let stim = bench.stimulus_with_cycles(&design, cycles);
    // Pin the reference serial, independent of ERASER_THREADS in the
    // ambient environment.
    let config = CampaignConfig::serial();
    let serial = engine.run(&design, &faults, &stim, &config);
    assert!(
        serial.coverage.detected() > 0,
        "{} {}: serial campaign detected nothing",
        bench.name(),
        serial.name
    );
    for strategy in PartitionStrategy::all() {
        for threads in THREAD_SWEEP {
            let par = Parallel::new(engine, ParallelConfig { threads, strategy });
            let merged = par.run(&design, &faults, &stim, &config);
            // CoverageReport's PartialEq compares every fault's detection
            // record — step and output included — so this is bit-identity,
            // stronger than the detected-set parity of Table II.
            assert_eq!(
                serial.coverage,
                merged.coverage,
                "{} {} [{strategy} x{threads}]: merged coverage diverged from serial",
                bench.name(),
                serial.name,
            );
            assert_eq!(
                serial.coverage.coverage_percent(),
                merged.coverage.coverage_percent()
            );
        }
    }
}

#[test]
fn eraser_full_is_deterministic_across_partitions() {
    assert_deterministic(Benchmark::Alu64, 30, 32, Eraser::full());
    assert_deterministic(Benchmark::Apb, 40, 32, Eraser::full());
    assert_deterministic(Benchmark::PicoRv32, 40, 24, Eraser::full());
}

#[test]
fn eraser_ablation_modes_are_deterministic() {
    assert_deterministic(Benchmark::Apb, 40, 24, Eraser::explicit());
    assert_deterministic(Benchmark::Apb, 40, 24, Eraser::none());
}

#[test]
fn serial_baselines_are_deterministic_across_partitions() {
    assert_deterministic(Benchmark::Alu64, 24, 20, IFsim);
    assert_deterministic(Benchmark::Apb, 32, 16, VFsim);
    assert_deterministic(Benchmark::RiscvMini, 30, 20, CfSim);
}

/// The parity sweep extension: the whole parallel line-up (all six engines
/// under one shared [`ParallelConfig`]) against the serial line-up on the
/// same inputs, via the [`CampaignRunner`] parity checker.
#[test]
fn parallel_line_up_passes_cross_engine_parity() {
    let bench = Benchmark::Sha256Hv;
    let design = bench.build();
    let mut cfg = bench.fault_config();
    cfg.max_faults = Some(24);
    let faults = generate_faults(&design, &cfg);
    let stim = bench.stimulus_with_cycles(&design, 72);
    let runner = CampaignRunner::new(&design, &faults, &stim).with_config(CampaignConfig::serial());
    let engines = eraser::baselines::all_engines_parallel(ParallelConfig::with_threads(4));
    let results = runner.run_all(&engines);
    assert_eq!(results.len(), 6);
    CampaignRunner::check_parity(&results).expect("parallel line-up parity");
    assert!(results.iter().all(|r| r.name.ends_with(" p4")));
}

/// `run_campaign` driven through `CampaignConfig::parallel` (the path the
/// CLI and every report binary use) is bit-identical to serial as well.
#[test]
fn run_campaign_parallel_config_is_deterministic() {
    let bench = Benchmark::ConvAcc;
    let design = bench.build();
    let mut cfg = bench.fault_config();
    cfg.max_faults = Some(32);
    let faults = generate_faults(&design, &cfg);
    let stim = bench.stimulus_with_cycles(&design, 40);
    let serial = eraser::core::run_campaign(&design, &faults, &stim, &CampaignConfig::serial());
    for strategy in PartitionStrategy::all() {
        for threads in THREAD_SWEEP {
            let res = eraser::core::run_campaign(
                &design,
                &faults,
                &stim,
                &CampaignConfig {
                    parallel: ParallelConfig { threads, strategy },
                    ..CampaignConfig::serial()
                },
            );
            assert_eq!(
                serial.coverage, res.coverage,
                "run_campaign [{strategy} x{threads}] diverged"
            );
            // The work ledger still balances on merged stats.
            let s = &res.stats;
            assert_eq!(
                s.opportunities,
                (s.fault_executions - s.fault_only_activations)
                    + s.explicit_skipped
                    + s.implicit_skipped
                    + s.suppressed_activations,
                "[{strategy} x{threads}] merged stats ledger unbalanced"
            );
        }
    }
}

/// Full determinism sweep: every engine, every strategy, threads
/// {1, 2, 4, 7}, all ten benchmark designs. Slow in debug builds; run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "slow: full benchmark sweep; run with --release -- --ignored"]
fn determinism_full_suite() {
    for bench in Benchmark::all() {
        let cycles = (bench.default_cycles() / 3).max(24);
        assert_deterministic(bench, cycles, 60, IFsim);
        assert_deterministic(bench, cycles, 60, VFsim);
        assert_deterministic(bench, cycles, 60, CfSim);
        assert_deterministic(bench, cycles, 60, Eraser::full());
        assert_deterministic(bench, cycles, 60, Eraser::explicit());
        assert_deterministic(bench, cycles, 60, Eraser::none());
    }
}
