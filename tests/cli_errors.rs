//! CLI error-handling contract: every failure path exits nonzero with a
//! consistent `error:` line on stderr — exit 2 for usage errors (plus the
//! usage text), exit 1 for runtime failures — and a well-formed run exits
//! zero.

use std::process::{Command, Output};

fn eraser(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_eraser"))
        .args(args)
        .output()
        .expect("spawn eraser binary")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Usage errors (exit 2) always carry the `error:` prefix and the usage
/// text so the caller sees what a valid invocation looks like.
fn assert_usage_error(out: &Output, needle: &str) {
    let err = stderr(out);
    assert_eq!(out.status.code(), Some(2), "stderr: {err}");
    assert!(err.starts_with("error:"), "stderr: {err}");
    assert!(err.contains(needle), "stderr: {err}");
    assert!(err.contains("usage:"), "usage text missing: {err}");
}

/// Runtime failures (exit 1) carry the `error:` prefix but no usage dump
/// — the invocation was fine, the inputs were not.
fn assert_runtime_error(out: &Output, needle: &str) {
    let err = stderr(out);
    assert_eq!(out.status.code(), Some(1), "stderr: {err}");
    assert!(err.starts_with("error:"), "stderr: {err}");
    assert!(err.contains(needle), "stderr: {err}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    assert_usage_error(&eraser(&["--nonsense"]), "--nonsense");
}

#[test]
fn missing_flag_value_is_a_usage_error() {
    assert_usage_error(&eraser(&["--threads"]), "--threads");
}

#[test]
fn non_numeric_flag_value_is_a_usage_error() {
    assert_usage_error(&eraser(&["--threads", "many"]), "--threads");
}

#[test]
fn bad_redundancy_mode_is_a_usage_error() {
    assert_usage_error(&eraser(&["--mode", "sideways"]), "unknown redundancy mode");
}

#[test]
fn no_input_at_all_is_a_usage_error() {
    assert_usage_error(&eraser(&[]), "no design file");
}

#[test]
fn missing_design_file_is_a_runtime_error() {
    assert_runtime_error(&eraser(&["/no/such/design.v"]), "/no/such/design.v");
}

#[test]
fn unreadable_spec_file_is_a_runtime_error() {
    assert_runtime_error(
        &eraser(&["--spec", "/no/such/spec.json"]),
        "/no/such/spec.json",
    );
}

#[test]
fn bad_spec_key_is_a_runtime_error_naming_the_key() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("eraser-cli-badspec-{}.json", std::process::id()));
    std::fs::write(&path, r#"{"design": {"benchmark": "APB"}, "sede": 3}"#).unwrap();
    let out = eraser(&["--spec", path.to_str().unwrap()]);
    assert_runtime_error(&out, "sede");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn spec_file_and_design_file_together_is_a_runtime_error() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("eraser-cli-bothspec-{}.json", std::process::id()));
    std::fs::write(&path, r#"{"design": {"benchmark": "APB"}}"#).unwrap();
    let out = eraser(&["--spec", path.to_str().unwrap(), "design.v"]);
    let err = stderr(&out);
    assert_eq!(out.status.code(), Some(1), "stderr: {err}");
    assert!(err.starts_with("error:"), "stderr: {err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bad_store_selector_is_a_runtime_error() {
    assert_runtime_error(&eraser(&["serve", "--store", "bogus"]), "bogus");
}

#[test]
fn well_formed_benchmark_spec_exits_zero() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("eraser-cli-okspec-{}.json", std::process::id()));
    std::fs::write(
        &path,
        r#"{"design": {"benchmark": "APB"}, "steps": 10, "threads": 1}"#,
    )
    .unwrap();
    let out = eraser(&["--spec", path.to_str().unwrap()]);
    let err = stderr(&out);
    assert_eq!(out.status.code(), Some(0), "stderr: {err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("coverage"), "stdout: {stdout}");
    let _ = std::fs::remove_file(&path);
}
