//! Campaign-matrix parity over the imported Yosys-JSON netlist fixtures.
//!
//! A gate-level netlist must be a first-class fault-simulation target: for
//! every bundled fixture, every engine × backend × thread count ×
//! checkpoint × batch × collapse combination must detect the identical
//! coverage records (first-detection step and observing output per fault)
//! as the serial scalar reference of the same engine and backend.
//!
//! The fixtures run shortened stimuli and capped fault universes so the
//! debug-mode matrix stays fast; the campaign paths exercised are the
//! same ones the full-length fig13 report measures.

use eraser::baselines::{IFsim, VFsim};
use eraser::core::{
    BatchConfig, CampaignConfig, CheckpointConfig, CollapseConfig, Eraser, EvalBackend,
    FaultSimEngine, ParallelConfig,
};
use eraser::designs::{netlist_fixtures, DesignSource};
use eraser::fault::{generate_faults, FaultList};
use eraser::ir::Design;
use eraser::sim::Stimulus;

const THREADS: [usize; 2] = [1, 4];
const INTERVALS: [usize; 2] = [0, 8];

fn fixture_bundle(
    source: &DesignSource,
    cycles: usize,
    max_faults: usize,
) -> (Design, FaultList, Stimulus) {
    let mut fc = source.fault_config().clone();
    fc.max_faults = Some(max_faults.min(fc.max_faults.unwrap_or(usize::MAX)));
    let faults = generate_faults(source.design(), &fc);
    let stim = source.stimulus_with_cycles(cycles);
    (source.design().clone(), faults, stim)
}

fn config(
    backend: EvalBackend,
    threads: usize,
    interval: usize,
    batch: bool,
    collapse: bool,
) -> CampaignConfig {
    CampaignConfig {
        backend,
        parallel: ParallelConfig::with_threads(threads),
        checkpoint: CheckpointConfig::every(interval),
        batch: BatchConfig { enabled: batch },
        collapse: CollapseConfig { enabled: collapse },
        ..Default::default()
    }
}

/// The full knob matrix for one imported design: every combination must
/// reproduce the serial scalar reference coverage of its engine/backend.
fn check_matrix(name: &str, design: &Design, faults: &FaultList, stim: &Stimulus) {
    let engines: [(&str, Box<dyn FaultSimEngine>); 3] = [
        ("Eraser", Box::new(Eraser::full())),
        ("IFsim", Box::new(IFsim)),
        ("VFsim", Box::new(VFsim)),
    ];
    for backend in [EvalBackend::Tree, EvalBackend::Tape] {
        for (ename, engine) in &engines {
            let reference = engine
                .run(design, faults, stim, &config(backend, 1, 0, false, false))
                .coverage;
            assert!(
                reference.detected() > 0,
                "{name}/{ename}/{backend:?}: reference campaign detected nothing"
            );
            for threads in THREADS {
                for interval in INTERVALS {
                    for batch in [false, true] {
                        for collapse in [false, true] {
                            let result = engine.run(
                                design,
                                faults,
                                stim,
                                &config(backend, threads, interval, batch, collapse),
                            );
                            assert_eq!(
                                reference, result.coverage,
                                "{name}/{ename}/{backend:?} x{threads} ckpt={interval} \
                                 batch={batch} collapse={collapse}: coverage diverged"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn counter8_gate_full_matrix() {
    let source = netlist_fixtures()
        .into_iter()
        .find(|f| f.name() == "counter8_gate")
        .unwrap();
    let (design, faults, stim) = fixture_bundle(&source, 70, 70);
    check_matrix("counter8_gate", &design, &faults, &stim);
}

#[test]
fn mac16_gate_full_matrix() {
    let source = netlist_fixtures()
        .into_iter()
        .find(|f| f.name() == "mac16_gate")
        .unwrap();
    let (design, faults, stim) = fixture_bundle(&source, 50, 60);
    check_matrix("mac16_gate", &design, &faults, &stim);
}

/// Full-length sweep over every fixture (release CI leg).
#[test]
#[ignore = "slow: run with --ignored in release CI"]
fn netlist_fixture_sweep_full_length() {
    for source in netlist_fixtures() {
        let faults = generate_faults(source.design(), source.fault_config());
        let stim = source.stimulus();
        check_matrix(source.name(), source.design(), &faults, &stim);
    }
}
