//! Tree-vs-tape backend parity — the correctness criterion of the compiled
//! instruction-tape evaluation backend: on every benchmark design and in
//! every redundancy mode, a campaign run on [`EvalBackend::Tape`] must
//! produce **bit-identical** coverage (every fault's first-detection step
//! and observing output, not just the detected set) and identical
//! redundancy counters (the skip counts prove the execution paths were
//! identical, decision by decision) to the tree walker.
//!
//! The default tests run shortened campaigns on the same representative
//! subset as `engine_parity`; the `--ignored` sweep covers all ten
//! benchmarks.

use eraser::baselines::{IFsim, VFsim};
use eraser::core::{
    run_campaign, CampaignConfig, CampaignRunner, Eraser, EvalBackend, FaultSimEngine,
    RedundancyMode, RedundancyStats,
};
use eraser::designs::Benchmark;
use eraser::fault::{generate_faults, FaultList, FaultListConfig};

/// Asserts every deterministic counter matches (timing fields excluded —
/// they are wall-clock measurements, not semantics).
fn assert_stats_identical(
    bench: &str,
    mode: RedundancyMode,
    a: &RedundancyStats,
    b: &RedundancyStats,
) {
    let key = |s: &RedundancyStats| {
        [
            s.good_activations,
            s.opportunities,
            s.explicit_skipped,
            s.implicit_skipped,
            s.fault_executions,
            s.fault_only_activations,
            s.suppressed_activations,
            s.rtl_good_evals,
            s.rtl_fault_evals,
            s.deltas,
            s.skipped_prefix_steps,
            s.skipped_faults,
            s.dropped_faults,
        ]
    };
    assert_eq!(
        key(a),
        key(b),
        "{bench} ({mode}): redundancy counters diverged between backends"
    );
}

fn parity_for(bench: Benchmark, cycles: usize, max_faults: usize) {
    let design = bench.build();
    let mut cfg: FaultListConfig = bench.fault_config();
    cfg.max_faults = Some(max_faults.min(cfg.max_faults.unwrap_or(usize::MAX)));
    let faults: FaultList = generate_faults(&design, &cfg);
    let stim = bench.stimulus_with_cycles(&design, cycles);

    for mode in [
        RedundancyMode::None,
        RedundancyMode::Explicit,
        RedundancyMode::Full,
    ] {
        let run = |backend| {
            run_campaign(
                &design,
                &faults,
                &stim,
                &CampaignConfig {
                    mode,
                    backend,
                    ..CampaignConfig::serial()
                },
            )
        };
        let tree = run(EvalBackend::Tree);
        let tape = run(EvalBackend::Tape);
        // Coverage must be identical record by record: the same faults,
        // detected at the same step on the same output.
        for f in faults.iter() {
            assert_eq!(
                tree.coverage.detection(f.id),
                tape.coverage.detection(f.id),
                "{} ({mode}): detection record of fault {} diverged",
                bench.name(),
                f.id
            );
        }
        assert_stats_identical(bench.name(), mode, &tree.stats, &tape.stats);
    }
}

#[test]
fn backend_parity_alu() {
    parity_for(Benchmark::Alu64, 40, 80);
}

#[test]
fn backend_parity_apb() {
    parity_for(Benchmark::Apb, 60, 80);
}

#[test]
fn backend_parity_picorv32() {
    parity_for(Benchmark::PicoRv32, 60, 80);
}

#[test]
fn backend_parity_sha256_hv() {
    parity_for(Benchmark::Sha256Hv, 72, 60);
}

#[test]
fn backend_parity_conv() {
    parity_for(Benchmark::ConvAcc, 40, 60);
}

/// Full-suite backend parity across all ten benchmarks × three redundancy
/// modes. Slow in debug builds; run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "slow: full benchmark sweep; run with --release -- --ignored"]
fn backend_parity_full_suite() {
    for bench in Benchmark::all() {
        parity_for(bench, bench.default_cycles() / 2, 250);
    }
}

/// Input-port stuck-at faults under a stimulus that re-applies identical
/// input values (exercising the `set_input` early return) must agree
/// across the concurrent engine and the serial force-based baselines, on
/// both backends.
#[test]
fn input_fault_parity_across_engines_and_backends() {
    let design = eraser::frontend::compile(
        "module m(input wire clk, input wire en, input wire [3:0] a, output reg [3:0] q);
           always @(posedge clk) begin
             if (en) q <= a; else q <= 4'h0;
           end
         endmodule",
        None,
    )
    .unwrap();
    let faults = generate_faults(
        &design,
        &FaultListConfig {
            include_inputs: true,
            exclude_names: vec!["clk".into(), "en".into()],
            max_faults: None,
        },
    );
    let clk = design.find_signal("clk").unwrap();
    let en = design.find_signal("en").unwrap();
    let a = design.find_signal("a").unwrap();
    let mut sb = eraser::sim::StimulusBuilder::new();
    for cycle in 0..10 {
        sb.add_cycle(
            clk,
            &[
                (a, eraser::logic::LogicVec::from_u64(4, 0xf)),
                (
                    en,
                    eraser::logic::LogicVec::from_u64(1, (cycle >= 6) as u64),
                ),
            ],
        );
    }
    let stim = sb.finish();
    let engines: Vec<Box<dyn FaultSimEngine>> = vec![
        Box::new(IFsim),
        Box::new(VFsim),
        Box::new(Eraser::full()),
        Box::new(Eraser::explicit()),
        Box::new(Eraser::none()),
    ];
    for backend in [EvalBackend::Tree, EvalBackend::Tape] {
        let runner = CampaignRunner::new(&design, &faults, &stim).with_config(CampaignConfig {
            backend,
            ..CampaignConfig::serial()
        });
        let results = runner.run_all(&engines);
        if let Err(mismatch) = CampaignRunner::check_parity(&results) {
            panic!("{backend}: {mismatch}");
        }
        assert!(
            results[0].coverage.detected() > 0,
            "{backend}: nothing detected"
        );
    }
}
