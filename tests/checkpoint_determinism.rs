//! Checkpointed good-state replay determinism — the correctness criterion
//! of temporal redundancy trimming: for every engine, evaluation backend,
//! checkpoint interval and thread count, coverage must be **bit-identical**
//! (every fault's first-detection step and observing output, not just the
//! detected set) to the same engine's non-checkpointed run. Since the
//! two-dimensional scheduler landed, every engine honors
//! `CampaignConfig::parallel` natively under checkpointing, and the
//! window plan is worker-count-independent — so at a fixed interval *all*
//! redundancy counters, not just coverage, must be bit-identical between
//! the serial and the multi-threaded run.
//!
//! The default tests run shortened campaigns on two benchmarks plus a
//! crafted design with genuinely late activation windows (so the
//! prefix-skip and fault-skip paths are actually exercised, not just
//! trivially bypassed); the `--ignored` sweep widens the benchmark set.

use eraser::baselines::{CfSim, IFsim, VFsim};
use eraser::core::{
    CampaignConfig, CheckpointConfig, Eraser, EvalBackend, FaultSimEngine, Parallel,
    ParallelConfig, RedundancyStats,
};
use eraser::designs::Benchmark;
use eraser::fault::{generate_faults, FaultList, FaultListConfig};
use eraser::frontend::compile;
use eraser::ir::Design;
use eraser::logic::LogicVec;
use eraser::sim::{Stimulus, StimulusBuilder};

/// The deterministic integer counters of a stats block (timing excluded).
fn counter_key(s: &RedundancyStats) -> [u64; 13] {
    [
        s.good_activations,
        s.opportunities,
        s.explicit_skipped,
        s.implicit_skipped,
        s.fault_executions,
        s.fault_only_activations,
        s.suppressed_activations,
        s.rtl_good_evals,
        s.rtl_fault_evals,
        s.deltas,
        s.skipped_prefix_steps,
        s.skipped_faults,
        s.dropped_faults,
    ]
}

fn config(backend: EvalBackend, checkpoint: CheckpointConfig) -> CampaignConfig {
    CampaignConfig {
        backend,
        checkpoint,
        parallel: ParallelConfig::serial(),
        ..Default::default()
    }
}

/// Runs the full interval x backend x thread matrix for one engine and
/// asserts coverage-record identity against the non-checkpointed serial
/// run. Returns the checkpointed serial stats (tree backend, interval 8)
/// for caller-side feature assertions.
fn check_engine<E: FaultSimEngine + Sync + Copy>(
    name: &str,
    engine: E,
    design: &Design,
    faults: &FaultList,
    stim: &Stimulus,
) -> Option<RedundancyStats> {
    let mut probe_stats = None;
    for backend in [EvalBackend::Tree, EvalBackend::Tape] {
        let base = engine.run(
            design,
            faults,
            stim,
            &config(backend, CheckpointConfig::disabled()),
        );
        for interval in [1usize, 8, 64] {
            let ck = CheckpointConfig::every(interval);
            let serial = engine.run(design, faults, stim, &config(backend, ck));
            assert_eq!(
                base.coverage, serial.coverage,
                "{name} [{backend:?} ckpt={interval}]: coverage records diverged from ckpt-off"
            );
            // Native composition: same checkpointed campaign with worker
            // threads. The window plan never looks at the worker count, so
            // the serial and threaded runs execute identical engines —
            // every counter, not just coverage, must match bit-for-bit.
            let native4 = engine.run(
                design,
                faults,
                stim,
                &CampaignConfig {
                    parallel: ParallelConfig::with_threads(4),
                    ..config(backend, ck)
                },
            );
            assert_eq!(
                base.coverage, native4.coverage,
                "{name} [{backend:?} ckpt={interval} native x4]: coverage diverged"
            );
            if let (Some(a), Some(b)) = (&serial.stats, &native4.stats) {
                assert_eq!(
                    counter_key(a),
                    counter_key(b),
                    "{name} [{backend:?} ckpt={interval}]: counters not thread-invariant"
                );
            }
            let par = Parallel::new(engine, ParallelConfig::with_threads(4)).run(
                design,
                faults,
                stim,
                &config(backend, ck),
            );
            assert_eq!(
                base.coverage, par.coverage,
                "{name} [{backend:?} ckpt={interval} x4]: merged coverage diverged"
            );
            if let (Some(s), Some(p)) = (&serial.stats, &par.stats) {
                // Windows are derived per shard from identical good runs,
                // so per-fault starts — and the summed skip counters — are
                // partition-invariant.
                assert_eq!(
                    (s.skipped_prefix_steps, s.skipped_faults),
                    (p.skipped_prefix_steps, p.skipped_faults),
                    "{name} [{backend:?} ckpt={interval}]: skip counters not partition-invariant"
                );
            }
            if backend == EvalBackend::Tree && interval == 8 {
                probe_stats = serial.stats.clone();
            }
        }
    }
    probe_stats
}

fn check_all_engines(design: &Design, faults: &FaultList, stim: &Stimulus) {
    check_engine("IFsim", IFsim, design, faults, stim);
    check_engine("VFsim", VFsim, design, faults, stim);
    check_engine("CfSim", CfSim, design, faults, stim);
    check_engine("Eraser", Eraser::full(), design, faults, stim);
}

fn bench_fixture(
    bench: Benchmark,
    cycles: usize,
    max_faults: usize,
) -> (Design, FaultList, Stimulus) {
    let design = bench.build();
    let mut fc = bench.fault_config();
    fc.max_faults = Some(max_faults.min(fc.max_faults.unwrap_or(usize::MAX)));
    let faults = generate_faults(&design, &fc);
    let stim = bench.stimulus_with_cycles(&design, cycles);
    (design, faults, stim)
}

/// A design with genuinely staggered activation: `bank` is written only
/// under `en` (asserted late), and the masked high nibble of `m` can never
/// contradict its sa0 faults at all.
fn late_activation_fixture() -> (Design, FaultList, Stimulus) {
    let design = compile(
        "module lateregs(input wire clk, input wire rst, input wire en, input wire [3:0] a,
                         output reg [7:0] acc, output reg [7:0] bank, output wire [7:0] obs);
           wire [7:0] m;
           assign m = acc & 8'h0f;
           assign obs = bank ^ m;
           always @(posedge clk) begin
             if (rst) begin acc <= 8'h00; bank <= 8'h00; end
             else begin
               acc <= acc + {4'h0, a};
               if (en) bank <= acc;
             end
           end
         endmodule",
        None,
    )
    .unwrap();
    let faults = generate_faults(&design, &FaultListConfig::default());
    let clk = design.find_signal("clk").unwrap();
    let rst = design.find_signal("rst").unwrap();
    let en = design.find_signal("en").unwrap();
    let a = design.find_signal("a").unwrap();
    let mut sb = StimulusBuilder::new();
    let mut x = 5u64;
    for cycle in 0..40u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        sb.add_cycle(
            clk,
            &[
                (rst, LogicVec::from_u64(1, (cycle < 2) as u64)),
                // en stays low for a long prefix, then pulses.
                (
                    en,
                    LogicVec::from_u64(1, (cycle >= 25 && x & 4 != 0) as u64),
                ),
                (a, LogicVec::from_u64(4, x >> 33)),
            ],
        );
    }
    (design, faults, sb.finish())
}

#[test]
fn late_activation_design_all_engines() {
    let (design, faults, stim) = late_activation_fixture();
    check_all_engines(&design, &faults, &stim);
    // The checkpointed serial runs must actually exercise the trimming
    // machinery on this design: prefix skips and whole-fault skips.
    let stats = check_engine("IFsim", IFsim, &design, &faults, &stim)
        .expect("checkpointed serial campaigns carry stats");
    assert!(
        stats.skipped_prefix_steps > 0,
        "expected real prefix skips, got {stats:?}"
    );
    assert!(
        stats.skipped_faults > 0,
        "expected never-active faults to be skipped, got {stats:?}"
    );
}

#[test]
fn benchmark_apb() {
    let (design, faults, stim) = bench_fixture(Benchmark::Apb, 40, 80);
    check_all_engines(&design, &faults, &stim);
}

#[test]
fn benchmark_alu() {
    let (design, faults, stim) = bench_fixture(Benchmark::Alu64, 30, 60);
    check_all_engines(&design, &faults, &stim);
}

/// Full sweep over a wider benchmark set (release CI leg).
#[test]
#[ignore = "slow: run with --ignored in release CI"]
fn benchmark_sweep_full() {
    for bench in [
        Benchmark::Fpu32,
        Benchmark::Sha256Hv,
        Benchmark::SodorCore,
        Benchmark::RiscvMini,
        Benchmark::PicoRv32,
        Benchmark::ConvAcc,
        Benchmark::MipsCpu,
    ] {
        let (design, faults, stim) = bench_fixture(bench, 40, 100);
        check_all_engines(&design, &faults, &stim);
    }
}
