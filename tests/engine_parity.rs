//! Cross-engine fault-coverage parity — the correctness criterion of the
//! paper's Table II: ERASER (in all three redundancy modes) must detect
//! exactly the same fault set as the serial force-based simulator (IFsim),
//! the levelized full-evaluation simulator (VFsim), and the concurrent
//! explicit-only engine (CfSim).
//!
//! All engines are enumerated polymorphically through the
//! [`FaultSimEngine`](eraser::core::FaultSimEngine) trait and driven by one
//! [`CampaignRunner`](eraser::core::CampaignRunner), so adding an engine to
//! the line-up automatically adds it to the parity check.
//!
//! The default tests run shortened campaigns on a representative subset;
//! the full-suite sweep (all ten benchmarks) runs in the benchmark harness
//! and in the `--ignored` test below.

use eraser::baselines::all_engines;
use eraser::core::{CampaignRunner, Eraser, FaultSimEngine};
use eraser::designs::Benchmark;
use eraser::fault::{generate_faults, FaultListConfig};

/// The full line-up under test: the Fig. 6 engines (IFsim, VFsim, CfSim,
/// Eraser) plus the remaining two ablation variants of the concurrent
/// engine (Eraser--, Eraser-).
fn engines_under_test() -> Vec<Box<dyn FaultSimEngine>> {
    let mut engines = all_engines();
    engines.push(Box::new(Eraser::none()));
    engines.push(Box::new(Eraser::explicit()));
    engines
}

fn parity_for(bench: Benchmark, cycles: usize, max_faults: usize) {
    let design = bench.build();
    let mut cfg: FaultListConfig = bench.fault_config();
    cfg.max_faults = Some(max_faults.min(cfg.max_faults.unwrap_or(usize::MAX)));
    let faults = generate_faults(&design, &cfg);
    let stim = bench.stimulus_with_cycles(&design, cycles);

    let runner = CampaignRunner::new(&design, &faults, &stim);
    let results = runner.run_all(&engines_under_test());
    assert_eq!(results.len(), 6);
    if let Err(mismatch) = CampaignRunner::check_parity(&results) {
        panic!("{}: {mismatch}", bench.name());
    }
    // Sanity: campaigns actually detect something.
    assert!(
        results[0].coverage.detected() > 0,
        "{}: nothing detected ({})",
        bench.name(),
        results[0].coverage
    );
    // The concurrent engines always carry redundancy instrumentation; the
    // serial baselines carry it only when checkpointed good-state replay
    // (which their skip counters quantify) is enabled via `ERASER_CKPT`.
    let serial_stats = eraser::core::CheckpointConfig::from_env().is_enabled();
    for r in &results {
        let concurrent = r.name.starts_with("Eraser") || r.name == "CfSim";
        assert_eq!(
            r.stats.is_some(),
            concurrent || serial_stats,
            "{}: unexpected stats presence for {}",
            bench.name(),
            r.name
        );
    }
}

#[test]
fn parity_alu() {
    parity_for(Benchmark::Alu64, 40, 80);
}

#[test]
fn parity_apb() {
    parity_for(Benchmark::Apb, 60, 80);
}

#[test]
fn parity_picorv32() {
    parity_for(Benchmark::PicoRv32, 60, 80);
}

#[test]
fn parity_sha256_hv() {
    parity_for(Benchmark::Sha256Hv, 72, 60);
}

#[test]
fn parity_conv() {
    parity_for(Benchmark::ConvAcc, 40, 60);
}

/// Full-suite parity across all ten benchmarks with larger fault samples.
/// Slow in debug builds; run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "slow: full benchmark sweep; run with --release -- --ignored"]
fn parity_full_suite() {
    for bench in Benchmark::all() {
        parity_for(bench, bench.default_cycles() / 2, 250);
    }
}
