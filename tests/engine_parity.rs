//! Cross-engine fault-coverage parity — the correctness criterion of the
//! paper's Table II: ERASER (in all three redundancy modes) must detect
//! exactly the same fault set as the serial force-based simulator (IFsim),
//! the levelized full-evaluation simulator (VFsim), and the concurrent
//! explicit-only engine (CfSim).
//!
//! The default tests run shortened campaigns on a representative subset;
//! the full-suite sweep (all ten benchmarks) runs in the benchmark harness
//! and in the `--ignored` test below.

use eraser::baselines::{run_cfsim, run_ifsim, run_vfsim};
use eraser::core::{run_campaign, CampaignConfig, RedundancyMode};
use eraser::designs::Benchmark;
use eraser::fault::{generate_faults, FaultListConfig};

fn parity_for(bench: Benchmark, cycles: usize, max_faults: usize) {
    let design = bench.build();
    let mut cfg: FaultListConfig = bench.fault_config();
    cfg.max_faults = Some(max_faults.min(cfg.max_faults.unwrap_or(usize::MAX)));
    let faults = generate_faults(&design, &cfg);
    let stim = bench.stimulus_with_cycles(&design, cycles);

    let ifsim = run_ifsim(&design, &faults, &stim);
    let vfsim = run_vfsim(&design, &faults, &stim);
    let cfsim = run_cfsim(&design, &faults, &stim);
    assert!(
        ifsim.coverage.same_detected_set(&vfsim.coverage),
        "{}: IFsim {} vs VFsim {}",
        bench.name(),
        ifsim.coverage,
        vfsim.coverage
    );
    assert!(
        ifsim.coverage.same_detected_set(&cfsim.coverage),
        "{}: IFsim {} vs CfSim {}",
        bench.name(),
        ifsim.coverage,
        cfsim.coverage
    );
    for mode in [RedundancyMode::None, RedundancyMode::Explicit, RedundancyMode::Full] {
        let res = run_campaign(
            &design,
            &faults,
            &stim,
            &CampaignConfig {
                mode,
                drop_detected: true,
            },
        );
        assert!(
            ifsim.coverage.same_detected_set(&res.coverage),
            "{}: IFsim {} vs {mode} {} (mismatch at faults {:?} vs {:?})",
            bench.name(),
            ifsim.coverage,
            res.coverage,
            ifsim.coverage.undetected().len(),
            res.coverage.undetected().len(),
        );
    }
    // Sanity: campaigns actually detect something.
    assert!(
        ifsim.coverage.detected() > 0,
        "{}: nothing detected",
        bench.name()
    );
}

#[test]
fn parity_alu() {
    parity_for(Benchmark::Alu64, 40, 80);
}

#[test]
fn parity_apb() {
    parity_for(Benchmark::Apb, 60, 80);
}

#[test]
fn parity_picorv32() {
    parity_for(Benchmark::PicoRv32, 60, 80);
}

#[test]
fn parity_sha256_hv() {
    parity_for(Benchmark::Sha256Hv, 72, 60);
}

#[test]
fn parity_conv() {
    parity_for(Benchmark::ConvAcc, 40, 60);
}

/// Full-suite parity across all ten benchmarks with larger fault samples.
/// Slow in debug builds; run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "slow: full benchmark sweep; run with --release -- --ignored"]
fn parity_full_suite() {
    for bench in Benchmark::all() {
        parity_for(bench, bench.default_cycles() / 2, 250);
    }
}
