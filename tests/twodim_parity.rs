//! Two-dimensional parallelism parity — the composed checkpointed +
//! fault-parallel campaign path must be a pure performance knob.
//!
//! Two invariants, asserted across engines × backends × thread counts ×
//! checkpoint intervals × batching × collapsing:
//!
//! 1. **Coverage identity.** Every configuration detects the identical
//!    coverage records (first-detection step and observing output per
//!    fault) as the serial non-checkpointed reference.
//! 2. **Counter thread-invariance.** At a fixed checkpoint interval, the
//!    window plan is worker-count-independent, so *every* semantic
//!    redundancy counter — not just coverage — is bit-identical between
//!    the serial run and any multi-threaded run of the same
//!    configuration. (Counters legitimately differ *across* intervals —
//!    each window group evaluates its own good suffix — which is exactly
//!    the trade `skipped_prefix_steps` measures.)
//!
//! The default tests run shortened campaigns on two benchmarks plus a
//! crafted late-activation design where the composed path must report
//! genuinely nonzero prefix/fault skips at every thread count — the
//! regression guard for the historical silent degradation where enabling
//! threads forfeited every checkpoint skip. The `--ignored` sweep widens
//! to all ten Table II benchmarks.

use eraser::baselines::{CfSim, IFsim, VFsim};
use eraser::core::{
    BatchConfig, CampaignConfig, CheckpointConfig, CollapseConfig, Eraser, EvalBackend,
    FaultSimEngine, ParallelConfig, RedundancyStats,
};
use eraser::designs::Benchmark;
use eraser::fault::{generate_faults, FaultList, FaultListConfig};
use eraser::frontend::compile;
use eraser::ir::Design;
use eraser::logic::LogicVec;
use eraser::sim::{Stimulus, StimulusBuilder};

const THREADS: [usize; 4] = [1, 2, 4, 7];
const INTERVALS: [usize; 4] = [0, 1, 8, 64];

/// The deterministic integer counters of a stats block (timing excluded).
fn counter_key(s: &RedundancyStats) -> [u64; 13] {
    [
        s.good_activations,
        s.opportunities,
        s.explicit_skipped,
        s.implicit_skipped,
        s.fault_executions,
        s.fault_only_activations,
        s.suppressed_activations,
        s.rtl_good_evals,
        s.rtl_fault_evals,
        s.deltas,
        s.skipped_prefix_steps,
        s.skipped_faults,
        s.dropped_faults,
    ]
}

struct Knobs {
    backend: EvalBackend,
    interval: usize,
    batch: bool,
    collapse: bool,
}

impl Knobs {
    fn config(&self, threads: usize) -> CampaignConfig {
        CampaignConfig {
            backend: self.backend,
            checkpoint: CheckpointConfig::every(self.interval),
            parallel: ParallelConfig::with_threads(threads),
            batch: BatchConfig {
                enabled: self.batch,
            },
            collapse: CollapseConfig {
                enabled: self.collapse,
            },
            ..Default::default()
        }
    }

    fn label(&self) -> String {
        format!(
            "{:?} ckpt={} batch={} collapse={}",
            self.backend, self.interval, self.batch, self.collapse
        )
    }
}

/// Runs one engine through a knob set at every thread count: coverage must
/// match `reference` everywhere, and — when checkpointing is on — the
/// counters must match the knob set's own single-thread run bit-for-bit.
/// Returns the single-thread stats for caller-side feature assertions.
fn check_knobs(
    name: &str,
    engine: &dyn FaultSimEngine,
    design: &Design,
    faults: &FaultList,
    stim: &Stimulus,
    knobs: &Knobs,
    reference: &eraser::fault::CoverageReport,
) -> Option<RedundancyStats> {
    let serial = engine.run(design, faults, stim, &knobs.config(1));
    assert_eq!(
        *reference,
        serial.coverage,
        "{name} [{}]: serial coverage diverged from reference",
        knobs.label()
    );
    for threads in THREADS.into_iter().skip(1) {
        let par = engine.run(design, faults, stim, &knobs.config(threads));
        assert_eq!(
            *reference,
            par.coverage,
            "{name} [{} x{threads}]: coverage diverged",
            knobs.label()
        );
        if knobs.interval > 0 {
            let (Some(a), Some(b)) = (&serial.stats, &par.stats) else {
                panic!(
                    "{name} [{} x{threads}]: checkpointed runs must carry stats",
                    knobs.label()
                );
            };
            assert_eq!(
                counter_key(a),
                counter_key(b),
                "{name} [{} x{threads}]: counters not thread-invariant",
                knobs.label()
            );
        }
    }
    serial.stats
}

/// The full matrix for one fixture. The concurrent engines additionally
/// sweep the batching knob (the serial baselines ignore it by design, so
/// sweeping it there would only duplicate runs).
fn check_fixture(design: &Design, faults: &FaultList, stim: &Stimulus, intervals: &[usize]) {
    let serial_engines: [(&str, Box<dyn FaultSimEngine>); 2] =
        [("IFsim", Box::new(IFsim)), ("VFsim", Box::new(VFsim))];
    let concurrent_engines: [(&str, Box<dyn FaultSimEngine>); 2] = [
        ("CfSim", Box::new(CfSim)),
        ("Eraser", Box::new(Eraser::full())),
    ];
    for backend in [EvalBackend::Tree, EvalBackend::Tape] {
        for (name, engine) in serial_engines.iter().chain(&concurrent_engines) {
            let reference = engine
                .run(
                    design,
                    faults,
                    stim,
                    &Knobs {
                        backend,
                        interval: 0,
                        batch: false,
                        collapse: false,
                    }
                    .config(1),
                )
                .coverage;
            for &interval in intervals {
                for collapse in [false, true] {
                    let batch_axis: &[bool] = if concurrent_engines.iter().any(|(n, _)| n == name) {
                        &[false, true]
                    } else {
                        &[false]
                    };
                    for &batch in batch_axis {
                        check_knobs(
                            name,
                            engine.as_ref(),
                            design,
                            faults,
                            stim,
                            &Knobs {
                                backend,
                                interval,
                                batch,
                                collapse,
                            },
                            &reference,
                        );
                    }
                }
            }
        }
    }
}

fn bench_fixture(
    bench: Benchmark,
    cycles: usize,
    max_faults: usize,
) -> (Design, FaultList, Stimulus) {
    let design = bench.build();
    let mut fc = bench.fault_config();
    fc.max_faults = Some(max_faults.min(fc.max_faults.unwrap_or(usize::MAX)));
    let faults = generate_faults(&design, &fc);
    let stim = bench.stimulus_with_cycles(&design, cycles);
    (design, faults, stim)
}

/// A design with genuinely staggered activation: `bank` is written only
/// under `en` (asserted from cycle 25), and the masked high nibble of `m`
/// can never contradict its sa0 faults at all — so a checkpointed run must
/// skip real prefixes and whole faults.
fn late_activation_fixture() -> (Design, FaultList, Stimulus) {
    let design = compile(
        "module lateregs(input wire clk, input wire rst, input wire en, input wire [3:0] a,
                         output reg [7:0] acc, output reg [7:0] bank, output wire [7:0] obs);
           wire [7:0] m;
           assign m = acc & 8'h0f;
           assign obs = bank ^ m;
           always @(posedge clk) begin
             if (rst) begin acc <= 8'h00; bank <= 8'h00; end
             else begin
               acc <= acc + {4'h0, a};
               if (en) bank <= acc;
             end
           end
         endmodule",
        None,
    )
    .unwrap();
    let faults = generate_faults(&design, &FaultListConfig::default());
    let clk = design.find_signal("clk").unwrap();
    let rst = design.find_signal("rst").unwrap();
    let en = design.find_signal("en").unwrap();
    let a = design.find_signal("a").unwrap();
    let mut sb = StimulusBuilder::new();
    let mut x = 5u64;
    for cycle in 0..40u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        sb.add_cycle(
            clk,
            &[
                (rst, LogicVec::from_u64(1, (cycle < 2) as u64)),
                (
                    en,
                    LogicVec::from_u64(1, (cycle >= 25 && x & 4 != 0) as u64),
                ),
                (a, LogicVec::from_u64(4, x >> 33)),
            ],
        );
    }
    (design, faults, sb.finish())
}

/// The regression guard for the historical silent degradation: before the
/// two-dimensional scheduler, enabling threads put the concurrent engine
/// on the from-zero path and every checkpoint skip was silently forfeited.
/// Now the composed path must report genuinely nonzero — and thread-
/// invariant — skip counters at every thread count.
#[test]
fn composed_path_reports_real_skips_at_every_thread_count() {
    let (design, faults, stim) = late_activation_fixture();
    let knobs = Knobs {
        backend: EvalBackend::Tree,
        interval: 8,
        batch: false,
        collapse: false,
    };
    let mut keys = Vec::new();
    for threads in THREADS {
        let result = Eraser::full().run(&design, &faults, &stim, &knobs.config(threads));
        let stats = result
            .stats
            .expect("checkpointed concurrent campaigns carry stats");
        assert!(
            stats.skipped_prefix_steps > 0,
            "x{threads}: composed path forfeited prefix skips: {stats:?}"
        );
        assert!(
            stats.skipped_faults > 0,
            "x{threads}: composed path forfeited fault skips: {stats:?}"
        );
        keys.push(counter_key(&stats));
    }
    assert!(
        keys.windows(2).all(|w| w[0] == w[1]),
        "skip counters moved across thread counts: {keys:?}"
    );
}

#[test]
fn late_activation_matrix() {
    let (design, faults, stim) = late_activation_fixture();
    check_fixture(&design, &faults, &stim, &INTERVALS);
}

#[test]
fn benchmark_apb_matrix() {
    let (design, faults, stim) = bench_fixture(Benchmark::Apb, 40, 60);
    check_fixture(&design, &faults, &stim, &INTERVALS);
}

#[test]
fn benchmark_alu_matrix() {
    let (design, faults, stim) = bench_fixture(Benchmark::Alu64, 24, 40);
    check_fixture(&design, &faults, &stim, &[0, 8]);
}

/// Full sweep over all ten Table II benchmarks (release CI leg).
#[test]
#[ignore = "slow: run with --ignored in release CI"]
fn benchmark_sweep_all_ten() {
    for bench in Benchmark::all() {
        let (design, faults, stim) = bench_fixture(bench, 40, 80);
        check_fixture(&design, &faults, &stim, &[0, 8]);
    }
}
